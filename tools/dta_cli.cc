// dta_cli — command-line front end, mirroring DTA's command-line executable
// (paper §2.1: "It can be run either from a graphical user interface or
// using a command-line executable").
//
// Usage:
//   dta_cli --metadata server.xml --input tuning.xml [--output out.xml]
//           [--evaluate] [--quiet] [--threads N] [--shards N]
//           [--transport inproc|socket] [--worker-bin PATH]
//           [--rpc-timeout MS]
//           [--tenants N] [--tenant-budget BYTES] [--slow-threshold X]
//           [--no-derived-costing] [--exact-costing]
//           [--derivation-error-bound PCT]
//           [--fault-spec SPEC] [--shard-fault-spec SPEC]
//           [--checkpoint FILE] [--checkpoint-budget PCT] [--resume FILE]
//           [--metrics-json FILE] [--fake-clock]
//           [--serve --stream FILE [--retune-interval N]
//            [--retune-interval-ms MS] [--stream-checkpoint FILE]
//            [--feedback-file FILE] [--max-templates N] [--decay X]
//            [--quarantine-rounds N]]
//
//   --metadata    ServerMetadata XML (produced by Server::ScriptMetadata or
//                 written by hand): databases, tables, columns, row counts.
//   --input       DTAXML input document: workload + tuning options
//                 (+ optional user-specified configuration).
//   --output      Where to write the DTAXML output document (default
//                 stdout).
//   --evaluate    Do not tune: evaluate the input's user-specified
//                 configuration against the workload (paper §6.3).
//   --quiet       Suppress the human-readable report on stdout.
//   --threads     Worker threads for what-if costing (0 = all hardware
//                 threads, 1 = serial). The recommendation is identical at
//                 any thread count; only tuning wall-clock changes.
//   --shards      Shard what-if costing across N server instances (shard 0
//                 is the tuning server, shards 1..N-1 bit-exact clones;
//                 calls are routed by rendezvous hashing with failover).
//                 The recommendation is identical at any shard count.
//   --transport   Costing transport: "inproc" (default; shards are
//                 in-process replicas) or "socket" (each shard is a
//                 cost_server worker process, spawned by dta_cli and
//                 reached over a Unix socket; calls run through the async
//                 completion queue, which requeues timeouts and worker
//                 failures instead of blocking). The recommendation is
//                 byte-identical under either transport. Socket mode is
//                 not combinable with --evaluate, --tenants, or
//                 --fault-spec (use --shard-fault-spec: it becomes each
//                 worker's own fault injector).
//   --worker-bin  Path to the cost_server executable (required with
//                 --transport socket). Workers are spawned with this run's
//                 --metadata, listen on sockets under a private temp
//                 directory, and are killed and reaped when dta_cli exits.
//   --rpc-timeout Socket transport only: per-attempt budget in ms before
//                 the completion queue abandons an in-flight request and
//                 requeues the call on the next shard (0 = router default).
//   --tenants     Run N independent tenants ("t0".."tN-1") concurrently
//                 through the multi-tenant driver (dta/tenant_driver.h):
//                 each tenant tunes its own copy of the server under the
//                 input's workload and options, sharing what-if capacity
//                 through admission control. With --output FILE, tenant i's
//                 DTAXML document lands in FILE.tenant<i>; each tenant's
//                 recommendation is byte-identical to a single-tenant run.
//                 --metrics-json merges every tenant's metrics under
//                 "tenant.<name>.". Not combinable with --evaluate,
//                 --checkpoint, or --resume.
//   --tenant-budget
//                 Per-tenant storage bound in bytes (overrides the input
//                 document's storage constraint for every tenant).
//   --slow-threshold
//                 Enable fail-slow isolation for sharded costing: a shard
//                 whose successful-call latency EWMA exceeds X times the
//                 fleet median is demoted to probe-only routing until it
//                 recovers (see dta/shard_router.h). 0 disables (default).
//                 Routing-only: the recommendation is unchanged.
//   --no-derived-costing
//                 Disable derived costing: every cache miss makes a real
//                 what-if call. By default misses whose configuration
//                 decomposes into per-access-path atomic configurations are
//                 answered by the CoPhy combine rule over memoized atom
//                 costs (10-100x fewer optimizer calls on index-rich
//                 workloads; the recommendation is unchanged).
//   --exact-costing
//                 Price every derivable miss BOTH ways (derived and real),
//                 record the derivation error distribution in the
//                 derivation.error_pct histogram, and use the real cost.
//                 Verifies the combine rule; saves nothing.
//   --derivation-error-bound
//                 Maximum tolerated derivation error, percent (default 0 =
//                 exact derivations only). A nonzero bound also admits the
//                 bounded singleton approximation for configurations whose
//                 full decomposition is too large.
//   --fault-spec  Inject scripted what-if optimizer faults, e.g.
//                 "seed=42,transient=0.1,permanent=0.01,latency_ms=0.5".
//                 Transient failures are retried with backoff; persistent
//                 ones degrade to a heuristic cost estimate (reported).
//                 Also supports outage profiles: "down_after=N" (the node
//                 dies at its N-th call) and "burst_start=S,burst_len=L"
//                 (a windowed burst outage).
//   --shard-fault-spec
//                 Per-shard fault injection: "<shard>:<SPEC>[;...]", e.g.
//                 "2:down_after=40;3:transient=0.2,seed=7". Calls routed to
//                 a faulted shard fail over to the next shard in rendezvous
//                 order; recommendations stay identical to a healthy run.
//   --checkpoint  Write a crash-safe session checkpoint to FILE after every
//                 phase and enumeration round (atomic tmp + rename).
//   --checkpoint-budget
//                 Cap enumeration-round checkpoint writes at PCT percent of
//                 tuning wall-clock (amortized; phase-boundary checkpoints
//                 always write). 0 (default) checkpoints every round.
//   --resume      Restore the checkpoint at FILE and skip completed work;
//                 the recommendation is identical to an uninterrupted run.
//                 Typically pointed at the same FILE as --checkpoint.
//   --metrics-json
//                 Write the session's observability document
//                 (dta-observability-v1: counters/gauges/histograms sorted
//                 by name, plus the phase span tree) to FILE. All counted
//                 quantities are thread-count invariant.
//   --fake-clock  Time the session with a clock frozen at zero instead of
//                 the real monotonic clock: every exported duration becomes
//                 0.000, making --metrics-json output byte-reproducible
//                 across runs and thread counts (golden tests, CI diffs).
//
// Continuous tuning service (DESIGN §16):
//   --serve       Run as a continuous tuning service instead of a one-shot
//                 tune: ingest the query capture at --stream, maintain the
//                 compressed workload incrementally, re-tune on a cadence,
//                 and print one recommendation delta per round to stdout.
//                 The input document's workload is ignored (the capture IS
//                 the workload); its options still apply to every round.
//                 Not combinable with --evaluate, --checkpoint, --resume,
//                 or --transport socket. With --tenants N the whole capture
//                 runs through N tenants under shared admission control
//                 (per-tenant delta logs at CHECKPOINT.tenant.<name>).
//   --stream      Capture file (or FIFO) to ingest: one SQL statement per
//                 line; "# ..." comments and blank lines are skipped;
//                 "@tick MS" advances the stream clock (the only clock the
//                 cadence ever sees). Read incrementally to end-of-stream.
//   --retune-interval
//                 Re-tune after every N successfully parsed statements
//                 (default 32 when no cadence flag is given).
//   --retune-interval-ms
//                 Re-tune after every MS milliseconds of accumulated @tick
//                 stream time. Combinable with --retune-interval; whichever
//                 fires first triggers the round.
//   --stream-checkpoint
//                 Append-only delta-log checkpoint (checkpoint format v3:
//                 base snapshot + per-round delta segments, compacted past
//                 a byte threshold). A service killed at any round boundary
//                 and restarted with the same flags resumes bit-exactly.
//   --feedback-file
//                 DBA feedback, re-read before every ingest step: lines of
//                 "accept <index>" / "reject <index>" (1-based position in
//                 the last printed recommendation, or a structure name;
//                 prefix "@R " defers to round R). Accepted structures are
//                 pinned into every later round; rejected ones are
//                 quarantined for --quarantine-rounds rounds.
//   --max-templates
//                 Bound on distinct query templates tracked (default 256);
//                 beyond it the lowest-weight template is evicted.
//   --decay       Per-round multiplicative decay of template weights
//                 (default 1 = no decay); older traffic fades so the
//                 recommendation tracks the live workload.
//   --quarantine-rounds
//                 Rounds a rejected structure stays out of candidate
//                 generation before becoming re-eligible (default 3).
//
// The server built from metadata alone has no table data or generator
// specs; statistics fall back to optimizer heuristics. This is DTA's
// exploratory mode — point it at a real Server in-process for full
// fidelity.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dta/shard_router.h"
#include "dta/stream/continuous.h"
#include "dta/tenant_driver.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "server/server.h"

namespace {

dta::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return dta::Status::NotFound("cannot open file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

dta::Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return dta::Status::Internal("cannot write file: " + path);
  }
  out << content;
  return dta::Status::Ok();
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --metadata server.xml --input tuning.xml "
               "[--output out.xml] [--evaluate] [--quiet] [--threads N] "
               "[--shards N] [--transport inproc|socket] "
               "[--worker-bin PATH] [--rpc-timeout MS] "
               "[--tenants N] [--tenant-budget BYTES] "
               "[--slow-threshold X] "
               "[--no-derived-costing] [--exact-costing] "
               "[--derivation-error-bound PCT] "
               "[--fault-spec SPEC] [--shard-fault-spec SPEC] "
               "[--checkpoint FILE] "
               "[--checkpoint-budget PCT] [--resume FILE] "
               "[--metrics-json FILE] [--fake-clock] "
               "[--serve --stream FILE [--retune-interval N] "
               "[--retune-interval-ms MS] [--stream-checkpoint FILE] "
               "[--feedback-file FILE] [--max-templates N] [--decay X] "
               "[--quarantine-rounds N]]\n",
               argv0);
  return 2;
}

// The cost_server worker processes a socket-transport run spawned, plus the
// temp directory their sockets live in. The destructor kills and reaps the
// fleet and removes the directory, so every exit path of main — error
// returns included — leaves no orphan workers and no stray sockets behind.
struct WorkerFleet {
  std::vector<pid_t> pids;
  std::vector<std::string> sockets;
  std::string socket_dir;

  ~WorkerFleet() {
    for (pid_t pid : pids) ::kill(pid, SIGTERM);
    for (pid_t pid : pids) {
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    for (const std::string& path : sockets) ::unlink(path.c_str());
    if (!socket_dir.empty()) ::rmdir(socket_dir.c_str());
  }
};

dta::Result<pid_t> SpawnWorker(const std::vector<std::string>& argv) {
  std::vector<char*> raw;
  raw.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    raw.push_back(const_cast<char*>(arg.c_str()));
  }
  raw.push_back(nullptr);
  pid_t pid = ::fork();
  if (pid < 0) {
    return dta::Status::Internal(std::string("fork failed: ") +
                                 std::strerror(errno));
  }
  if (pid == 0) {
    ::execv(raw[0], raw.data());
    // Reached only when exec failed; the parent sees the worker's socket
    // never appear and fails the connect with a clear deadline error.
    std::fprintf(stderr, "cannot exec %s: %s\n", raw[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metadata_path, input_path, output_path;
  std::string fault_spec, shard_fault_spec;
  std::string checkpoint_path, resume_path, metrics_path;
  std::string transport = "inproc", worker_bin;
  double rpc_timeout = 0;
  bool evaluate = false, quiet = false, fake_clock = false;
  bool no_derived_costing = false, exact_costing = false;
  double derivation_error_bound = -1;  // -1: keep the input's setting
  double checkpoint_budget = 0;
  int threads = -1;  // -1: keep the input document's (or default) setting
  int shards = -1;   // -1: keep the input document's (or default) setting
  int tenants = 1;
  long long tenant_budget = -1;  // bytes; -1: keep the input's constraint
  double slow_threshold = -1;    // -1: keep the input's setting (off)
  bool serve = false;
  std::string stream_path, stream_checkpoint_path, feedback_path;
  long long retune_interval = 0;
  double retune_interval_ms = 0;
  long long max_templates = 256;
  double decay = 1.0;
  long long quarantine_rounds = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--metadata") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metadata_path = v;
    } else if (arg == "--input") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      input_path = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      output_path = v;
    } else if (arg == "--evaluate") {
      evaluate = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "--threads expects a non-negative integer\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      shards = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || shards < 1) {
        std::fprintf(stderr, "--shards expects a positive integer\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--transport") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      transport = v;
      if (transport != "inproc" && transport != "socket") {
        std::fprintf(stderr,
                     "--transport expects \"inproc\" or \"socket\"\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--worker-bin") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      worker_bin = v;
    } else if (arg == "--rpc-timeout") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      rpc_timeout = std::strtod(v, &end);
      if (end == v || *end != '\0' || rpc_timeout < 0) {
        std::fprintf(stderr,
                     "--rpc-timeout expects a non-negative millisecond "
                     "count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--tenants") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      tenants = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || tenants < 1) {
        std::fprintf(stderr, "--tenants expects a positive integer\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--tenant-budget") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      tenant_budget = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || tenant_budget < 0) {
        std::fprintf(stderr,
                     "--tenant-budget expects a non-negative byte count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--slow-threshold") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      slow_threshold = std::strtod(v, &end);
      if (end == v || *end != '\0' || slow_threshold < 0) {
        std::fprintf(stderr,
                     "--slow-threshold expects a non-negative multiplier\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--no-derived-costing") {
      no_derived_costing = true;
    } else if (arg == "--exact-costing") {
      exact_costing = true;
    } else if (arg == "--derivation-error-bound") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      derivation_error_bound = std::strtod(v, &end);
      if (end == v || *end != '\0' || derivation_error_bound < 0) {
        std::fprintf(
            stderr,
            "--derivation-error-bound expects a non-negative percent\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--fault-spec") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      fault_spec = v;
    } else if (arg == "--shard-fault-spec") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      shard_fault_spec = v;
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      checkpoint_path = v;
    } else if (arg == "--checkpoint-budget") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      checkpoint_budget = std::strtod(v, &end);
      if (end == v || *end != '\0' || checkpoint_budget < 0) {
        std::fprintf(stderr,
                     "--checkpoint-budget expects a non-negative percent\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--resume") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      resume_path = v;
    } else if (arg == "--metrics-json") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      metrics_path = v;
    } else if (arg == "--fake-clock") {
      fake_clock = true;
    } else if (arg == "--serve") {
      serve = true;
    } else if (arg == "--stream") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      stream_path = v;
    } else if (arg == "--retune-interval") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      retune_interval = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || retune_interval < 1) {
        std::fprintf(stderr,
                     "--retune-interval expects a positive event count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--retune-interval-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      retune_interval_ms = std::strtod(v, &end);
      if (end == v || *end != '\0' || retune_interval_ms <= 0) {
        std::fprintf(stderr,
                     "--retune-interval-ms expects a positive millisecond "
                     "count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--stream-checkpoint") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      stream_checkpoint_path = v;
    } else if (arg == "--feedback-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      feedback_path = v;
    } else if (arg == "--max-templates") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      max_templates = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || max_templates < 1) {
        std::fprintf(stderr,
                     "--max-templates expects a positive template count\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--decay") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      decay = std::strtod(v, &end);
      if (end == v || *end != '\0' || decay <= 0 || decay > 1) {
        std::fprintf(stderr, "--decay expects a factor in (0, 1]\n");
        return Usage(argv[0]);
      }
    } else if (arg == "--quarantine-rounds") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      char* end = nullptr;
      quarantine_rounds = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || quarantine_rounds < 0) {
        std::fprintf(stderr,
                     "--quarantine-rounds expects a non-negative round "
                     "count\n");
        return Usage(argv[0]);
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (metadata_path.empty() || input_path.empty()) return Usage(argv[0]);

  auto metadata = ReadFile(metadata_path);
  if (!metadata.ok()) {
    std::fprintf(stderr, "%s\n", metadata.status().ToString().c_str());
    return 1;
  }
  auto input_text = ReadFile(input_path);
  if (!input_text.ok()) {
    std::fprintf(stderr, "%s\n", input_text.status().ToString().c_str());
    return 1;
  }

  auto input = dta::tuner::TuningInputFromXml(*input_text);
  if (!input.ok()) {
    std::fprintf(stderr, "bad DTAXML input: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }
  auto server = dta::server::Server::FromMetadataScript(
      *metadata,
      input->server_name.empty() ? "server" : input->server_name,
      dta::optimizer::HardwareParams());
  if (!server.ok()) {
    std::fprintf(stderr, "bad server metadata: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  if (threads >= 0) input->options.num_threads = threads;
  if (shards >= 1) input->options.shards = shards;
  if (slow_threshold >= 0) {
    input->options.shard_slow_threshold = slow_threshold;
  }
  if (tenant_budget >= 0) {
    input->options.storage_bytes = static_cast<uint64_t>(tenant_budget);
  }
  if (tenants > 1 &&
      (evaluate || !checkpoint_path.empty() || !resume_path.empty())) {
    std::fprintf(stderr,
                 "--tenants cannot be combined with --evaluate, "
                 "--checkpoint, or --resume\n");
    return Usage(argv[0]);
  }
  if (no_derived_costing) input->options.derived_costing = false;
  if (exact_costing) input->options.exact_costing = true;
  if (derivation_error_bound >= 0) {
    input->options.derivation_error_bound_pct = derivation_error_bound;
  }
  if (!fault_spec.empty()) {
    // Validate up front so a typo fails before tuning starts.
    auto parsed_spec = dta::FaultSpec::Parse(fault_spec);
    if (!parsed_spec.ok()) {
      std::fprintf(stderr, "bad --fault-spec: %s\n",
                   parsed_spec.status().ToString().c_str());
      return 1;
    }
    input->options.fault_spec = fault_spec;
  }
  if (!shard_fault_spec.empty()) {
    auto parsed_spec = dta::tuner::ShardFaultSpec::Parse(shard_fault_spec);
    if (!parsed_spec.ok()) {
      std::fprintf(stderr, "bad --shard-fault-spec: %s\n",
                   parsed_spec.status().ToString().c_str());
      return 1;
    }
    input->options.shard_fault_spec = shard_fault_spec;
  }
  // ---- Continuous tuning service: ingest the capture stream, re-tune on
  // cadence, print one recommendation delta per round. The final
  // recommendation (as a Configuration XML document) goes to --output.
  if (serve) {
    if (evaluate || !checkpoint_path.empty() || !resume_path.empty() ||
        transport == "socket") {
      std::fprintf(stderr,
                   "--serve cannot be combined with --evaluate, "
                   "--checkpoint, --resume, or --transport socket (use "
                   "--stream-checkpoint for the service's delta log)\n");
      return Usage(argv[0]);
    }
    if (stream_path.empty()) {
      std::fprintf(stderr, "--serve requires --stream FILE\n");
      return Usage(argv[0]);
    }
    // Default cadence when neither flag is given.
    if (retune_interval == 0 && retune_interval_ms <= 0) retune_interval = 32;

    dta::MetricsRegistry metrics;
    dta::FakeClock frozen_clock;
    const dta::Clock* clock =
        fake_clock ? static_cast<const dta::Clock*>(&frozen_clock) : nullptr;
    dta::Tracer tracer(clock);

    // Feedback is re-read in full before every ingest step; the service's
    // line cursor makes re-reads idempotent. An absent file simply means no
    // feedback yet.
    auto read_feedback = [&]() -> std::string {
      if (feedback_path.empty()) return std::string();
      auto text = ReadFile(feedback_path);
      return text.ok() ? std::move(text).value() : std::string();
    };
    auto write_metrics = [&]() -> dta::Status {
      if (metrics_path.empty()) return dta::Status::Ok();
      std::string doc = dta::ObservabilityJson(metrics, &tracer);
      if (dta::Status s = WriteFile(metrics_path, doc); !s.ok()) return s;
      if (!quiet) {
        std::printf("wrote %s (%zu bytes)\n", metrics_path.c_str(),
                    doc.size());
      }
      return dta::Status::Ok();
    };

    // ---- Fleet mode: the whole capture through N tenants, each with its
    // own server clone and (when checkpointing) its own delta log.
    if (tenants > 1) {
      auto capture = ReadFile(stream_path);
      if (!capture.ok()) {
        std::fprintf(stderr, "%s\n", capture.status().ToString().c_str());
        return 1;
      }
      std::vector<std::unique_ptr<dta::server::Server>> tenant_clones;
      std::vector<dta::server::Server*> tenant_servers;
      std::vector<dta::tuner::TenantSpec> specs;
      for (int t = 0; t < tenants; ++t) {
        const std::string name = "t" + std::to_string(t);
        if (t == 0) {
          tenant_servers.push_back(server->get());
        } else {
          auto clone = (*server)->Clone((*server)->name() + "-" + name);
          if (!clone.ok()) {
            std::fprintf(stderr, "cannot clone server for tenant %s: %s\n",
                         name.c_str(), clone.status().ToString().c_str());
            return 1;
          }
          tenant_servers.push_back(clone->get());
          tenant_clones.push_back(std::move(clone).value());
        }
        dta::tuner::TenantSpec spec;
        spec.name = name;
        spec.options = input->options;
        spec.weight = 1;
        specs.push_back(std::move(spec));
      }
      dta::tuner::TenantDriverOptions driver_options;
      driver_options.metrics = metrics_path.empty() ? nullptr : &metrics;
      driver_options.clock = clock;
      dta::tuner::TenantDriver driver(driver_options);
      dta::tuner::ContinuousFleetSpec fleet_spec;
      fleet_spec.capture = std::move(capture).value();
      fleet_spec.feedback = read_feedback();
      fleet_spec.retune_interval_events =
          static_cast<size_t>(retune_interval);
      fleet_spec.retune_interval_ms = retune_interval_ms;
      fleet_spec.max_templates = static_cast<size_t>(max_templates);
      fleet_spec.decay = decay;
      fleet_spec.quarantine_rounds =
          static_cast<uint64_t>(quarantine_rounds);
      fleet_spec.checkpoint_prefix = stream_checkpoint_path;
      auto outcomes = driver.RunContinuous(specs, tenant_servers, fleet_spec);
      if (!outcomes.ok()) {
        std::fprintf(stderr, "continuous fleet failed: %s\n",
                     outcomes.status().ToString().c_str());
        return 1;
      }
      int rc = 0;
      for (size_t t = 0; t < outcomes->size(); ++t) {
        const dta::tuner::ContinuousTenantOutcome& o = (*outcomes)[t];
        if (!o.status.ok()) {
          std::fprintf(stderr, "tenant %s failed: %s\n", o.name.c_str(),
                       o.status.ToString().c_str());
          rc = 1;
          continue;
        }
        if (!quiet) {
          std::printf("---- tenant %s (%llu rounds%s) ----\n%s",
                      o.name.c_str(),
                      static_cast<unsigned long long>(o.rounds),
                      o.resumed ? ", resumed" : "", o.delta_text.c_str());
        }
        if (!output_path.empty()) {
          const std::string doc =
              dta::tuner::ConfigurationToXml(o.recommendation)->ToString();
          const std::string path =
              output_path + ".tenant" + std::to_string(t);
          if (dta::Status s = WriteFile(path, doc); !s.ok()) {
            std::fprintf(stderr, "%s\n", s.ToString().c_str());
            return 1;
          }
          if (!quiet) {
            std::printf("wrote %s (%zu bytes)\n", path.c_str(), doc.size());
          }
        }
      }
      if (dta::Status s = write_metrics(); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      return rc;
    }

    // ---- Single service: read the capture incrementally (so a FIFO feeds
    // rounds as its writer produces them), re-reading feedback before every
    // chunk. Round deltas stream to stdout through the delta sink.
    dta::tuner::stream::ContinuousTuner::Config config;
    config.server = server->get();
    config.options = input->options;
    config.retune_interval_events = static_cast<size_t>(retune_interval);
    config.retune_interval_ms = retune_interval_ms;
    config.max_templates = static_cast<size_t>(max_templates);
    config.decay = decay;
    config.quarantine_rounds = static_cast<uint64_t>(quarantine_rounds);
    config.checkpoint_path = stream_checkpoint_path;
    config.metrics = metrics_path.empty() ? nullptr : &metrics;
    config.tracer = metrics_path.empty() ? nullptr : &tracer;
    config.clock = clock;
    if (!quiet) {
      config.delta_sink = [](const std::string& delta) {
        std::fputs(delta.c_str(), stdout);
        std::fflush(stdout);
      };
    }
    dta::tuner::stream::ContinuousTuner service(std::move(config));
    auto run = [&]() -> dta::Status {
      if (dta::Status s = service.Init(); !s.ok()) return s;
      if (!quiet && service.resumed()) {
        std::printf("resumed from %s at round %llu\n",
                    stream_checkpoint_path.c_str(),
                    static_cast<unsigned long long>(service.rounds()));
      }
      std::ifstream in(stream_path, std::ios::binary);
      if (!in) {
        return dta::Status::NotFound("cannot open capture: " + stream_path);
      }
      char buffer[1 << 16];
      while (!service.stopped()) {
        in.read(buffer, sizeof(buffer));
        const std::streamsize got = in.gcount();
        if (got <= 0) break;
        service.ConsumeFeedback(read_feedback());
        if (dta::Status s = service.Feed(
                std::string_view(buffer, static_cast<size_t>(got)));
            !s.ok()) {
          return s;
        }
      }
      service.ConsumeFeedback(read_feedback());
      return service.Finish();
    };
    if (dta::Status s = run(); !s.ok()) {
      std::fprintf(stderr, "continuous service failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("served %llu rounds\n",
                  static_cast<unsigned long long>(service.rounds()));
    }
    const std::string doc =
        dta::tuner::ConfigurationToXml(service.recommendation())->ToString();
    if (output_path.empty()) {
      if (quiet) std::printf("%s", doc.c_str());
    } else {
      if (dta::Status s = WriteFile(output_path, doc); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (!quiet) {
        std::printf("wrote %s (%zu bytes)\n", output_path.c_str(),
                    doc.size());
      }
    }
    if (dta::Status s = write_metrics(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    return 0;
  }
  if (!stream_path.empty() || !stream_checkpoint_path.empty() ||
      !feedback_path.empty()) {
    std::fprintf(stderr,
                 "--stream/--stream-checkpoint/--feedback-file require "
                 "--serve\n");
    return Usage(argv[0]);
  }

  // ---- Socket transport: spawn one cost_server worker per shard on a
  // private socket directory, translate any per-shard fault spec into each
  // worker's own --fault-spec (the session cannot attach in-process
  // injectors to another process), and hand the endpoints to the session.
  // The fleet is killed, reaped, and its sockets removed when main returns,
  // whichever path it takes.
  WorkerFleet fleet;
  if (transport == "socket") {
    if (evaluate || tenants > 1) {
      std::fprintf(stderr,
                   "--transport socket cannot be combined with --evaluate "
                   "or --tenants\n");
      return Usage(argv[0]);
    }
    if (!fault_spec.empty()) {
      std::fprintf(stderr,
                   "--fault-spec attaches an in-process injector, which "
                   "the socket transport bypasses; use --shard-fault-spec "
                   "(it becomes each worker's own fault injector)\n");
      return Usage(argv[0]);
    }
    if (worker_bin.empty()) {
      std::fprintf(stderr,
                   "--transport socket requires --worker-bin (path to the "
                   "cost_server executable)\n");
      return Usage(argv[0]);
    }
    const int worker_count = std::max(1, input->options.shards);
    std::vector<std::string> worker_faults(
        static_cast<size_t>(worker_count));
    if (!input->options.shard_fault_spec.empty()) {
      auto parsed =
          dta::tuner::ShardFaultSpec::Parse(input->options.shard_fault_spec);
      if (!parsed.ok()) {  // spec may come from the input document
        std::fprintf(stderr, "bad shard fault spec: %s\n",
                     parsed.status().ToString().c_str());
        return 1;
      }
      for (const auto& [shard, spec] : parsed->per_shard) {
        if (shard >= worker_count) {
          std::fprintf(
              stderr,
              "--shard-fault-spec targets shard %d but only %d worker(s) "
              "exist\n",
              shard, worker_count);
          return 1;
        }
        worker_faults[static_cast<size_t>(shard)] = spec.ToString();
      }
      input->options.shard_fault_spec.clear();
    }
    char dir_template[] = "/tmp/dta_cli_workers_XXXXXX";
    if (::mkdtemp(dir_template) == nullptr) {
      std::fprintf(stderr, "cannot create socket directory: %s\n",
                   std::strerror(errno));
      return 1;
    }
    fleet.socket_dir = dir_template;
    for (int i = 0; i < worker_count; ++i) {
      const std::string name = "worker" + std::to_string(i);
      const std::string sock = fleet.socket_dir + "/" + name + ".sock";
      std::vector<std::string> args = {worker_bin, "--metadata",
                                       metadata_path, "--listen", sock,
                                       "--name",     name,
                                       "--quiet"};
      if (!worker_faults[static_cast<size_t>(i)].empty()) {
        args.push_back("--fault-spec");
        args.push_back(worker_faults[static_cast<size_t>(i)]);
      }
      auto pid = SpawnWorker(args);
      if (!pid.ok()) {
        std::fprintf(stderr, "cannot spawn %s: %s\n", name.c_str(),
                     pid.status().ToString().c_str());
        return 1;
      }
      fleet.pids.push_back(*pid);
      fleet.sockets.push_back(sock);
      input->options.socket_endpoints.push_back(sock);
    }
    input->options.transport =
        dta::tuner::TuningOptions::Transport::kSocket;
    if (rpc_timeout > 0) input->options.rpc_attempt_timeout_ms = rpc_timeout;
  }

  if (!checkpoint_path.empty()) {
    input->options.checkpoint_path = checkpoint_path;
  }
  if (checkpoint_budget > 0) {
    input->options.checkpoint_budget_pct = checkpoint_budget;
  }
  if (!resume_path.empty()) input->options.resume_path = resume_path;

  dta::tuner::TuningSession session(server->get(), input->options);

  // Observability: always collect when an export was requested; the frozen
  // clock zeroes every duration so the export is byte-reproducible.
  dta::MetricsRegistry metrics;
  dta::FakeClock frozen_clock;
  const dta::Clock* clock =
      fake_clock ? static_cast<const dta::Clock*>(&frozen_clock) : nullptr;
  dta::Tracer tracer(clock);
  if (!metrics_path.empty()) {
    session.SetObservability({&metrics, &tracer, clock});
  }

  // ---- Multi-tenant mode: N independent tenants, each tuning its own copy
  // of the server under shared admission control. Tenant i's DTAXML
  // document goes to --output FILE as FILE.tenant<i>.
  if (tenants > 1) {
    std::vector<std::unique_ptr<dta::server::Server>> tenant_clones;
    std::vector<dta::server::Server*> tenant_servers;
    std::vector<dta::tuner::TenantSpec> specs;
    for (int t = 0; t < tenants; ++t) {
      const std::string name = "t" + std::to_string(t);
      if (t == 0) {
        tenant_servers.push_back(server->get());
      } else {
        auto clone = (*server)->Clone((*server)->name() + "-" + name);
        if (!clone.ok()) {
          std::fprintf(stderr, "cannot clone server for tenant %s: %s\n",
                       name.c_str(), clone.status().ToString().c_str());
          return 1;
        }
        tenant_servers.push_back(clone->get());
        tenant_clones.push_back(std::move(clone).value());
      }
      dta::tuner::TenantSpec spec;
      spec.name = name;
      spec.workload = &input->workload;
      spec.options = input->options;
      spec.weight = 1;
      specs.push_back(std::move(spec));
    }
    dta::tuner::TenantDriverOptions driver_options;
    driver_options.metrics = metrics_path.empty() ? nullptr : &metrics;
    driver_options.clock = clock;
    dta::tuner::TenantDriver driver(driver_options);
    auto outcomes = driver.Run(specs, tenant_servers);
    if (!outcomes.ok()) {
      std::fprintf(stderr, "multi-tenant run failed: %s\n",
                   outcomes.status().ToString().c_str());
      return 1;
    }
    int rc = 0;
    for (size_t t = 0; t < outcomes->size(); ++t) {
      const dta::tuner::TenantOutcome& o = (*outcomes)[t];
      if (!o.status.ok()) {
        std::fprintf(stderr, "tenant %s failed: %s\n", o.name.c_str(),
                     o.status.ToString().c_str());
        rc = 1;
        continue;
      }
      if (!quiet) {
        std::printf(
            "[%s] tuned %zu events (%zu what-if calls); expected "
            "improvement %.1f%%\n",
            o.name.c_str(), o.result.events_tuned, o.result.whatif_calls,
            o.result.ImprovementPercent());
      }
      std::string doc = dta::tuner::TuningOutputToXml(
          *input, o.result.recommendation, o.result.report);
      if (output_path.empty()) {
        if (quiet) std::printf("%s", doc.c_str());
      } else {
        const std::string path =
            output_path + ".tenant" + std::to_string(t);
        if (dta::Status s = WriteFile(path, doc); !s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          return 1;
        }
        if (!quiet) {
          std::printf("wrote %s (%zu bytes)\n", path.c_str(), doc.size());
        }
      }
    }
    if (!metrics_path.empty()) {
      std::string doc = dta::ObservabilityJson(metrics, &tracer);
      if (dta::Status s = WriteFile(metrics_path, doc); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      if (!quiet) {
        std::printf("wrote %s (%zu bytes)\n", metrics_path.c_str(),
                    doc.size());
      }
    }
    return rc;
  }

  std::string output_doc;
  if (evaluate) {
    auto result = session.EvaluateConfiguration(
        input->workload, input->options.user_specified);
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("Configuration change vs current: %.1f%%\n%s",
                  result->ChangePercent(), result->report.ToText().c_str());
    }
    output_doc = dta::tuner::TuningOutputToXml(
        *input, input->options.user_specified, result->report);
  } else {
    auto result = session.Tune(input->workload);
    if (!result.ok()) {
      std::fprintf(stderr, "tuning failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf(
          "Tuned %zu events in %.2fs (%zu what-if calls); expected "
          "improvement %.1f%%\n%s",
          result->events_tuned, result->tuning_time_ms / 1000.0,
          result->whatif_calls, result->ImprovementPercent(),
          result->report.ToText().c_str());
    }
    output_doc = dta::tuner::TuningOutputToXml(
        *input, result->recommendation, result->report);
  }

  if (!metrics_path.empty()) {
    std::string doc = dta::ObservabilityJson(metrics, &tracer);
    if (dta::Status s = WriteFile(metrics_path, doc); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("wrote %s (%zu bytes)\n", metrics_path.c_str(), doc.size());
    }
  }

  if (output_path.empty()) {
    if (quiet) std::printf("%s", output_doc.c_str());
  } else {
    if (dta::Status s = WriteFile(output_path, output_doc); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("wrote %s (%zu bytes)\n", output_path.c_str(),
                  output_doc.size());
    }
  }
  return 0;
}
