#include "cpplex.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <tuple>

namespace dta::lex {

namespace {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

// A '"' opens a raw string when the identifier characters immediately
// before it end in R with at most an encoding prefix (R, LR, uR, UR, u8R).
bool IsRawStringPrefix(const std::string& text, size_t quote_pos) {
  size_t start = quote_pos;
  while (start > 0 && IsIdentChar(text[start - 1])) --start;
  const std::string prefix = text.substr(start, quote_pos - start);
  return prefix == "R" || prefix == "LR" || prefix == "uR" || prefix == "UR" ||
         prefix == "u8R";
}

// Trims leading/trailing whitespace.
std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

// One arm of a preprocessor conditional. Only a literal `#if 0`/`#if false`
// (or the dead arm of `#if 1`/`#if true`) disables code: any other
// condition is unknown at lint time, so both arms stay live and get linted
// (conservative in the "lint more" direction).
struct CondFrame {
  bool live_before = true;      // enclosing region was live
  bool taken_definitely = false;  // a literal-true arm already ran
  bool arm_live = true;         // current arm emits code
};

struct CondState {
  std::vector<CondFrame> stack;

  bool live() const {
    for (const CondFrame& f : stack) {
      if (!f.arm_live || !f.live_before) return false;
    }
    return true;
  }

  void Directive(const std::string& text) {
    // text starts at '#'; tolerate `#  if`.
    size_t i = 1;
    while (i < text.size() && IsSpace(text[i])) ++i;
    size_t j = i;
    while (j < text.size() && IsIdentChar(text[j])) ++j;
    const std::string kw = text.substr(i, j - i);
    const std::string rest = Trim(text.substr(j));
    if (kw == "if" || kw == "ifdef" || kw == "ifndef") {
      CondFrame f;
      f.live_before = live();
      if (kw == "if" && (rest == "0" || rest == "false")) {
        f.arm_live = false;
      } else if (kw == "if" && (rest == "1" || rest == "true")) {
        f.taken_definitely = true;
      }
      stack.push_back(f);
    } else if (kw == "elif") {
      if (stack.empty()) return;
      CondFrame& f = stack.back();
      if (f.taken_definitely) {
        f.arm_live = false;
      } else if (rest == "0" || rest == "false") {
        f.arm_live = false;
      } else {
        f.arm_live = true;
        if (rest == "1" || rest == "true") f.taken_definitely = true;
      }
    } else if (kw == "else") {
      if (stack.empty()) return;
      CondFrame& f = stack.back();
      f.arm_live = !f.taken_definitely;
    } else if (kw == "endif") {
      if (!stack.empty()) stack.pop_back();
    }
  }
};

}  // namespace

std::set<std::string> ParseRuleList(const std::string& text) {
  std::set<std::string> out;
  std::string token;
  auto flush = [&] {
    if (!token.empty()) out.insert(token);
    token.clear();
  };
  for (char c : text) {
    if (IsIdentChar(c) || c == '-') {
      token.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return out;
}

std::vector<SourceLine> PreprocessSource(const std::vector<std::string>& raw) {
  std::vector<SourceLine> lines;
  lines.reserve(raw.size());

  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_terminator;    // ")delim\"" that closes the raw string
  bool in_directive_continuation = false;
  CondState cond;

  for (const std::string& text : raw) {
    SourceLine line;
    std::string code;
    code.reserve(text.size());

    const bool continuation = in_directive_continuation;
    in_directive_continuation =
        continuation && !text.empty() && text.back() == '\\';

    for (size_t i = 0; i < text.size();) {
      if (in_block_comment) {
        if (text.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      if (in_raw_string) {
        const size_t end = text.find(raw_terminator, i);
        if (end == std::string::npos) {
          i = text.size();  // the raw string continues on the next line
        } else {
          i = end + raw_terminator.size();
          in_raw_string = false;
          code.push_back('"');
        }
        continue;
      }
      const char c = text[i];
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
        line.comment = text.substr(i + 2);
        break;  // rest of the line is comment
      }
      if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"') {
        if (IsRawStringPrefix(text, i)) {
          // R"delim( ... )delim" — find the open paren, remember the
          // terminator, and scan (possibly across lines) for it.
          const size_t open = text.find('(', i + 1);
          const std::string delim =
              open == std::string::npos
                  ? std::string()
                  : text.substr(i + 1, open - i - 1);
          raw_terminator = ")" + delim + "\"";
          in_raw_string = true;
          code.push_back('"');
          i = open == std::string::npos ? text.size() : open + 1;
          continue;
        }
        code.push_back('"');
        ++i;
        while (i < text.size()) {
          if (text[i] == '\\' && i + 1 < text.size()) {
            i += 2;
            continue;
          }
          if (text[i] == '"') {
            code.push_back('"');
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      if (c == '\'') {
        // A quote with identifier characters on both sides is a digit
        // separator (1'000'000), not a char literal.
        const bool separator = i > 0 && IsIdentChar(text[i - 1]) &&
                               i + 1 < text.size() && IsIdentChar(text[i + 1]);
        if (separator) {
          ++i;
          continue;
        }
        code.push_back('\'');
        ++i;
        while (i < text.size()) {
          if (text[i] == '\\' && i + 1 < text.size()) {
            i += 2;
            continue;
          }
          if (text[i] == '\'') {
            code.push_back('\'');
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      code.push_back(c);
      ++i;
    }

    const bool region_live = cond.live();

    // Preprocessor directives: handle conditional structure, then blank the
    // line (directives are not lintable code). Continuation lines of a
    // directive are blanked the same way.
    const std::string trimmed = Trim(code);
    const bool directive = !continuation && !trimmed.empty() &&
                           trimmed[0] == '#';
    if (directive) {
      cond.Directive(trimmed);
      in_directive_continuation = !text.empty() && text.back() == '\\';
      if (region_live) line.directive = trimmed;
    }

    if (!region_live || directive || continuation) {
      line.code.clear();
      // Keep markers on live directive lines (e.g. `#endif  // lint: x`);
      // dead regions carry no markers at all.
      if (!region_live) line.comment.clear();
    } else {
      line.code = std::move(code);
    }

    // The marker strings are matched inside // comments only, so a source
    // file mentioning them in code or prose strings never trips this.
    size_t mark = line.comment.find("lint:");
    if (mark != std::string::npos) {
      line.suppressed = ParseRuleList(line.comment.substr(mark + 5));
    }
    mark = line.comment.find("expect:");
    if (mark != std::string::npos) {
      line.expected = ParseRuleList(line.comment.substr(mark + 7));
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<Token> Tokenize(const std::vector<SourceLine>& lines) {
  // Longest-match first: every entry here arrives as one token.
  static const std::vector<std::string> kMultiChar = {
      "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
      "!=", "&&",  "||",  "++",  "--", "+=", "-=", "*=", "/=", "%=", "&=",
      "|=", "^=",
  };
  std::vector<Token> tokens;
  for (size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    for (size_t i = 0; i < code.size();) {
      const char c = code[i];
      if (IsSpace(c)) {
        ++i;
        continue;
      }
      Token t;
      t.line = li;
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        size_t j = i;
        while (j < code.size() && IsIdentChar(code[j])) ++j;
        t.kind = Token::Kind::kIdentifier;
        t.text = code.substr(i, j - i);
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        size_t j = i;
        // Good enough for scanning: idents chars, '.', and exponent signs.
        while (j < code.size() &&
               (IsIdentChar(code[j]) || code[j] == '.' ||
                ((code[j] == '+' || code[j] == '-') && j > i &&
                 (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                  code[j - 1] == 'p' || code[j - 1] == 'P')))) {
          ++j;
        }
        t.kind = Token::Kind::kNumber;
        t.text = code.substr(i, j - i);
        i = j;
      } else {
        t.kind = Token::Kind::kPunct;
        for (const std::string& op : kMultiChar) {
          if (code.compare(i, op.size(), op) == 0) {
            t.text = op;
            break;
          }
        }
        if (t.text.empty()) t.text = std::string(1, c);
        i += t.text.size();
      }
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

// ---- Shared driver plumbing ----------------------------------------------

bool Finding::operator<(const Finding& o) const {
  return std::tie(file, line, rule) < std::tie(o.file, o.line, o.rule);
}

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string RelPath(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  return ec || rel.empty() ? path.string() : rel.string();
}

bool CollectFiles(const fs::path& root, const std::vector<std::string>& inputs,
                  const std::vector<std::string>& excluded,
                  std::set<fs::path>* files, std::string* error) {
  // Root-relative prefix match on path-component boundaries, so an
  // exclusion of tests/lint_fixtures skips the directory but not a sibling
  // like tests/lint_fixtures_extra.
  auto is_excluded = [&root, &excluded](const fs::path& p) {
    std::error_code rel_ec;
    const fs::path rel = fs::relative(p, root, rel_ec);
    if (rel_ec || rel.empty()) return false;
    const std::string rel_str = rel.generic_string();
    for (const std::string& prefix : excluded) {
      if (rel_str.size() < prefix.size()) continue;
      if (rel_str.compare(0, prefix.size(), prefix) != 0) continue;
      if (rel_str.size() == prefix.size() || rel_str[prefix.size()] == '/') {
        return true;
      }
    }
    return false;
  };

  for (const std::string& input : inputs) {
    fs::path p =
        fs::path(input).is_absolute() ? fs::path(input) : root / input;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && HasLintableExtension(entry.path()) &&
            !is_excluded(entry.path())) {
          files->insert(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      if (!is_excluded(p)) files->insert(p);
    } else {
      *error = "no such file or directory: " + p.string();
      return false;
    }
  }
  return true;
}

bool ReadLines(const fs::path& path, std::vector<std::string>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string text;
  while (std::getline(in, text)) out->push_back(text);
  return true;
}

size_t DiffExpectations(std::vector<Finding>* findings,
                        std::vector<Finding>* expectations,
                        std::ostream& out) {
  // Exact two-way match: a rule that fails to fire is as much a bug as a
  // spurious finding.
  std::sort(findings->begin(), findings->end());
  std::sort(expectations->begin(), expectations->end());
  std::vector<Finding> unexpected;
  std::vector<Finding> missing;
  auto key_equal = [](const Finding& a, const Finding& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule;
  };
  size_t fi = 0;
  size_t ei = 0;
  while (fi < findings->size() || ei < expectations->size()) {
    if (fi == findings->size()) {
      missing.push_back((*expectations)[ei++]);
    } else if (ei == expectations->size()) {
      unexpected.push_back((*findings)[fi++]);
    } else if (key_equal((*findings)[fi], (*expectations)[ei])) {
      ++fi;
      ++ei;
    } else if ((*findings)[fi] < (*expectations)[ei]) {
      unexpected.push_back((*findings)[fi++]);
    } else {
      missing.push_back((*expectations)[ei++]);
    }
  }
  for (const Finding& f : unexpected) {
    out << f.file << ":" << f.line << ": unexpected [" << f.rule << "] "
        << f.message << "\n";
  }
  for (const Finding& f : missing) {
    out << f.file << ":" << f.line << ": expected [" << f.rule
        << "] but the rule did not fire\n";
  }
  return unexpected.size() + missing.size();
}

}  // namespace dta::lex
