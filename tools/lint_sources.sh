#!/usr/bin/env bash
# The one source-file glob shared by every style/static-analysis gate. The
# clang-format CI job and the clang-tidy CI job both call this script, so a
# new directory cannot silently escape one job but not the other — change
# the scope here and every gate follows.
#
#   lint_sources.sh          every C++ source/header (clang-format scope)
#   lint_sources.sh --tidy   translation units under src/ and tools/
#                            (clang-tidy scope; headers are analyzed through
#                            the TUs that include them, filtered by
#                            HeaderFilterRegex in .clang-tidy)
#
# tests/lint_fixtures/ and tests/analyze_fixtures/ are excluded everywhere:
# those files are dta_lint/dta_analyze test data — deliberately
# rule-violating, never compiled, checked only by their fixture ctests.
#
# Exits non-zero if the glob matches nothing: an empty match means the tree
# layout changed under us, and silently linting zero files would pass every
# gate vacuously.
set -euo pipefail
cd "$(dirname "$0")/.."

list_sources() {
  case "${1:-}" in
    --tidy)
      find src tools -name '*.cc'
      ;;
    "")
      find src tests bench tools examples \
        \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) \
        -not -path 'tests/lint_fixtures/*' \
        -not -path 'tests/analyze_fixtures/*'
      ;;
    *)
      echo "usage: $0 [--tidy]" >&2
      exit 2
      ;;
  esac
}

out="$(list_sources "${1:-}")"
if [ -z "${out}" ]; then
  echo "$0: source glob matched no files" >&2
  exit 1
fi
printf '%s\n' "${out}"
