#!/usr/bin/env python3
"""Compare a bench observability document against a checked-in baseline.

Both inputs are dta-observability-v1 JSON documents (what bench_pipeline
writes and dta_cli --metrics-json exports). The comparison gates:

  counters   deterministic work counts (what-if calls per scenario). These
             are thread-count and machine invariant, so any growth beyond
             --tolerance-pct is a real regression (more optimizer calls for
             the same workload). Shrinkage is reported as an improvement and
             prompts a baseline refresh, but does not fail.
  gauges     *.wall_ms wall-clock gauges, gated at --wall-tolerance-pct
             (runner-dependent; use a wider tolerance in CI, or skip them
             entirely with --ignore-wall-clock for sanitizer/debug builds).
             bench.checkpoint_overhead_pct is gated against the absolute
             ceiling --max-checkpoint-overhead-pct (the ROADMAP target is
             < 1%; the default ceiling leaves headroom for runner noise).
             bench.shard_failover_overhead_pct (extra wall-clock of the
             sharded run with a fault-killed shard over the healthy sharded
             run) is gated against --max-shard-failover-overhead-pct.
             bench.failslow_isolation_overhead_pct (extra wall-clock of the
             sharded run with one fail-slow shard demoted by the slowness
             detector, over the healthy sharded run) is gated against
             --max-failslow-isolation-overhead-pct.
             bench.whatif_calls_saved_pct (real what-if calls the derived
             costing layer avoided, vs the derivation-off run) is
             counter-derived — machine invariant — and gated against the
             floor --min-whatif-calls-saved-pct even when wall-clock gates
             are skipped.
             bench.checkpoint.delta_bytes_per_round (average bytes the
             continuous-service scenario appends to its delta log per
             round) is byte-derived — machine invariant — and gated against
             the ceiling --max-delta-bytes-per-round: steady-state rounds
             must stay O(new work), never O(total state).
             Deterministic floor/ceiling gauges are gated off the *current*
             document, so they are enforced even before the baseline learns
             about a new scenario, and they survive --ignore-wall-clock.
             Other gauges (e.g. bench.fault_overhead_pct) are informational.

A baseline key missing from the current document fails (a scenario was
dropped); new keys in the current document warn (the baseline needs a
refresh). Exit codes: 0 ok, 1 regression, 2 bad invocation/input.

Regenerate the baseline with:  bench_pipeline bench/baseline.json
"""

import argparse
import json
import sys

WALL_SUFFIX = ".wall_ms"
CHECKPOINT_GAUGE = "bench.checkpoint_overhead_pct"
SHARD_FAILOVER_GAUGE = "bench.shard_failover_overhead_pct"
FAILSLOW_GAUGE = "bench.failslow_isolation_overhead_pct"
CALLS_SAVED_GAUGE = "bench.whatif_calls_saved_pct"
DELTA_BYTES_GAUGE = "bench.checkpoint.delta_bytes_per_round"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.stderr.write(f"bench_compare: cannot read {path}: {e}\n")
        sys.exit(2)
    if doc.get("schema") != "dta-observability-v1":
        sys.stderr.write(
            f"bench_compare: {path} is not a dta-observability-v1 document\n")
        sys.exit(2)
    return doc


def pct_change(baseline, current):
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return 100.0 * (current - baseline) / baseline


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench metrics against a checked-in baseline.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance-pct", type=float, default=10.0,
                        help="max allowed counter growth (default 10)")
    parser.add_argument("--wall-tolerance-pct", type=float, default=10.0,
                        help="max allowed *.wall_ms growth (default 10)")
    parser.add_argument("--max-checkpoint-overhead-pct", type=float,
                        default=2.0,
                        help=f"absolute ceiling for {CHECKPOINT_GAUGE} "
                             "(default 2.0; target < 1)")
    parser.add_argument("--max-shard-failover-overhead-pct", type=float,
                        default=25.0,
                        help=f"absolute ceiling for {SHARD_FAILOVER_GAUGE} "
                             "(default 25.0)")
    parser.add_argument("--max-failslow-isolation-overhead-pct", type=float,
                        default=30.0,
                        help=f"absolute ceiling for {FAILSLOW_GAUGE} "
                             "(default 30.0)")
    parser.add_argument("--min-whatif-calls-saved-pct", type=float,
                        default=50.0,
                        help=f"absolute floor for {CALLS_SAVED_GAUGE} "
                             "(default 50.0)")
    parser.add_argument("--max-delta-bytes-per-round", type=float,
                        default=65536.0,
                        help=f"absolute ceiling for {DELTA_BYTES_GAUGE} "
                             "(default 65536)")
    parser.add_argument("--ignore-wall-clock", action="store_true",
                        help="skip every time-derived gate; only the "
                             "deterministic counters gate (for debug or "
                             "sanitizer builds)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    failures = []

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for name in sorted(base_counters):
        if name not in cur_counters:
            failures.append(f"counter {name} missing from current run")
            continue
        change = pct_change(base_counters[name], cur_counters[name])
        line = (f"counter {name}: {base_counters[name]} -> "
                f"{cur_counters[name]} ({change:+.1f}%)")
        if change > args.tolerance_pct:
            failures.append(f"{line} exceeds +{args.tolerance_pct:.0f}%")
        elif change < 0:
            print(f"IMPROVED {line} — consider refreshing the baseline")
        else:
            print(f"ok       {line}")
    for name in sorted(set(cur_counters) - set(base_counters)):
        print(f"NEW      counter {name} = {cur_counters[name]} "
              "(not in baseline)")

    base_gauges = baseline.get("gauges", {})
    cur_gauges = current.get("gauges", {})

    # Deterministic (count- or byte-derived) gauges with an absolute floor
    # or ceiling. Gated off the *current* document — a scenario the baseline
    # does not know about yet is still enforced — and before the wall-clock
    # skip, so debug/sanitizer builds enforce them too.
    floors = {CALLS_SAVED_GAUGE: args.min_whatif_calls_saved_pct}
    ceilings = {DELTA_BYTES_GAUGE: args.max_delta_bytes_per_round}

    def gate_deterministic(name, value):
        """Applies a floor/ceiling gate; False when `name` has none."""
        if name in floors:
            line = f"gauge {name}: {value:.3f}"
            if value < floors[name]:
                failures.append(
                    f"{line} is below the floor {floors[name]:.1f}")
            else:
                print(f"ok       {line} (floor {floors[name]:.1f})")
            return True
        if name in ceilings:
            line = f"gauge {name}: {value:.3f}"
            if value > ceilings[name]:
                failures.append(
                    f"{line} exceeds the absolute ceiling "
                    f"{ceilings[name]:.1f}")
            else:
                print(f"ok       {line} (ceiling {ceilings[name]:.1f})")
            return True
        return False

    for name in sorted(set(base_gauges) | set(cur_gauges)):
        if name not in cur_gauges:
            failures.append(f"gauge {name} missing from current run")
            continue
        if gate_deterministic(name, cur_gauges[name]):
            continue
        if name not in base_gauges:
            print(f"NEW      gauge {name} = {cur_gauges[name]:.3f} "
                  "(not in baseline)")
            continue
        if args.ignore_wall_clock:
            continue
        if name.endswith(WALL_SUFFIX):
            change = pct_change(base_gauges[name], cur_gauges[name])
            line = (f"gauge {name}: {base_gauges[name]:.1f} -> "
                    f"{cur_gauges[name]:.1f} ({change:+.1f}%)")
            if change > args.wall_tolerance_pct:
                failures.append(
                    f"{line} exceeds +{args.wall_tolerance_pct:.0f}%")
            else:
                print(f"ok       {line}")
        elif name == CHECKPOINT_GAUGE:
            value = cur_gauges[name]
            line = f"gauge {name}: {value:.3f}"
            if value > args.max_checkpoint_overhead_pct:
                failures.append(
                    f"{line} exceeds the absolute ceiling "
                    f"{args.max_checkpoint_overhead_pct:.1f} (target < 1)")
            else:
                print(f"ok       {line} (ceiling "
                      f"{args.max_checkpoint_overhead_pct:.1f})")
        elif name == SHARD_FAILOVER_GAUGE:
            value = cur_gauges[name]
            line = f"gauge {name}: {value:.3f}"
            if value > args.max_shard_failover_overhead_pct:
                failures.append(
                    f"{line} exceeds the absolute ceiling "
                    f"{args.max_shard_failover_overhead_pct:.1f}")
            else:
                print(f"ok       {line} (ceiling "
                      f"{args.max_shard_failover_overhead_pct:.1f})")
        elif name == FAILSLOW_GAUGE:
            value = cur_gauges[name]
            line = f"gauge {name}: {value:.3f}"
            if value > args.max_failslow_isolation_overhead_pct:
                failures.append(
                    f"{line} exceeds the absolute ceiling "
                    f"{args.max_failslow_isolation_overhead_pct:.1f}")
            else:
                print(f"ok       {line} (ceiling "
                      f"{args.max_failslow_isolation_overhead_pct:.1f})")
        else:
            print(f"info     gauge {name}: {cur_gauges[name]:.3f}")

    if failures:
        for f in failures:
            sys.stderr.write(f"REGRESSION {f}\n")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
