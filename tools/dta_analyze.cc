// dta_analyze: whole-tree semantic static analysis for lock order and
// determinism flow.
//
// dta_lint (same directory) checks line-local conventions; this tool checks
// the two properties that are only visible globally:
//
//   lock-cycle      The inter-procedural lock-acquisition graph must be
//                   acyclic. An edge A -> B means some execution path
//                   acquires B while holding A — directly (a MutexLock
//                   nested inside another's scope), through a call chain
//                   (f holds A and calls g, which acquires B, possibly
//                   transitively), or via a REQUIRES(A) contract (the
//                   caller holds A for the whole body). Two paths that
//                   disagree on the order of A and B can deadlock under
//                   the right interleaving even though every individual
//                   mutex is used correctly — exactly the failure mode
//                   Clang's per-function -Wthread-safety cannot see.
//
//   lock-manifest   The computed edge set is diffed against the frozen,
//                   reviewed manifest tools/lock_order.manifest. A new
//                   edge is an error at the acquisition site until a human
//                   blesses it (rerun with --write-manifest and review the
//                   diff); a manifest entry no longer backed by code is an
//                   error at its manifest line. Lock-order decisions
//                   therefore show up in code review as manifest diffs,
//                   not as silent graph growth.
//
//   unordered-flow  Iterating a std::unordered_map/set and letting the
//                   loop body feed emission (stream <<, Emit/Write/Export/
//                   Serialize/Print/Output calls) or order-sensitive
//                   accumulation (+=, push_back/emplace_back/append)
//                   without an intervening sort leaks hash-table iteration
//                   order into bytes the project promises are identical
//                   across runs, thread counts, shard counts, and tenant
//                   counts. Accumulation into a container that is sorted
//                   later in the same block is the blessed pattern and is
//                   not flagged.
//
// --audit adds the annotation-coverage rules:
//
//   audit-guarded   Every dta::Mutex class member must have at least one
//                   GUARDED_BY(it) member in the same class — a mutex that
//                   guards nothing is either dead or hiding unannotated
//                   shared state.
//   audit-excludes  Every function that directly acquires an annotatable
//                   mutex (a member of its own class, or a member reached
//                   through a parameter) must declare EXCLUDES (or
//                   ACQUIRE) for it, so callers inherit the no-deadlock
//                   contract. Acquisitions rooted in locals or indexed
//                   through containers (shards_[i]->mu) are exempt: Clang
//                   cannot express them either.
//
// Mechanics: files are lexed by tools/cpplex (comments, strings, and
// preprocessor-dead regions never reach the parser), then a scope-tracking
// token parser recovers namespaces, classes, Mutex members, GUARDED_BY
// arguments, function signatures with their REQUIRES/EXCLUDES/ACQUIRE/
// RELEASE annotations, and per-function body events: MutexLock
// acquisitions (with the set of locks held, maintained by brace scope) and
// calls (name, qualifier, argument count). Lock expressions are normalized
// to class-qualified identities (shard.mu inside ShardRouter becomes
// dta::ShardRouter::Shard::mu) so annotations, acquisitions, and manifest
// entries all speak the same names. Calls resolve to parsed functions by
// qualifier, name, and argument-count compatibility — ambiguity means no
// edge (conservative: lock edges come only from resolutions we are sure
// of). Transitive acquisition sets are a fixpoint over the call graph.
//
// Findings use dta_lint's conventions: per-line `// lint: <rule>`
// suppressions (same line or the line above), `// expect: <rule>` fixture
// markers under --check-expectations, --disable=<rules>, and the same exit
// codes (0 clean, 1 findings, 2 usage error).
//
// Usage:
//   dta_analyze [--root=DIR] [--exclude=p1,p2] [--disable=r1,r2]
//               [--audit] [--manifest=PATH | --no-manifest]
//               [--write-manifest] [--dot=FILE] [--check-expectations]
//               PATH...

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cpplex.h"

namespace {

namespace fs = std::filesystem;

using dta::lex::Finding;
using dta::lex::SourceLine;
using dta::lex::Token;

const std::vector<std::string> kDefaultRules = {"lock-cycle", "lock-manifest",
                                                "unordered-flow"};
const std::vector<std::string> kAuditRules = {"audit-guarded",
                                             "audit-excludes"};

// ---- Parsed model --------------------------------------------------------

// A lock expression as it appears in source (MutexLock argument, annotation
// argument), before normalization.
struct LockExpr {
  std::vector<std::string> idents;  // identifier tokens, in order
  bool has_bracket = false;         // contains [ — container-indexed
  bool single_ident = false;        // exactly one token total
  size_t line = 0;                  // 0-based
};

struct Acquisition {
  LockExpr expr;
  size_t line = 0;
  std::vector<size_t> held;  // indices of earlier acquisitions still live
};

struct CallSite {
  std::string name;
  std::string qualifier;      // X in X::name(...), empty otherwise
  bool has_receiver = false;  // preceded by . or ->
  size_t argc = 0;
  size_t line = 0;
  std::vector<size_t> held;
};

struct FunctionInfo {
  std::string file;
  std::string qualified;  // dta::ShardRouter::RecordOutcome
  std::string name;       // last component
  // Enclosing class paths, innermost first (empty for free functions).
  std::vector<std::string> class_chain;
  bool is_ctor_dtor = false;
  bool has_body = false;
  size_t line = 0;
  size_t min_args = 0;
  size_t max_args = 0;
  std::vector<std::string> param_names;
  std::vector<LockExpr> requires_locks;
  std::vector<LockExpr> excludes_locks;  // EXCLUDES + ACQUIRE: both promise
                                         // "caller must not hold"
  std::vector<Acquisition> acqs;
  std::vector<CallSite> calls;
  std::set<std::string> local_mutexes;  // Mutex declared in the body
};

struct MutexMember {
  std::string file;
  size_t line = 0;
};

struct ClassInfo {
  std::map<std::string, MutexMember> mutex_members;
  std::vector<LockExpr> guarded_args;  // GUARDED_BY arguments seen in-class
};

struct ParseOutput {
  std::map<std::string, ClassInfo> classes;  // by full path
  std::vector<FunctionInfo> functions;
};

// ---- Token parser --------------------------------------------------------

bool IsAnnotationName(const std::string& s) {
  return s == "REQUIRES" || s == "REQUIRES_SHARED" || s == "EXCLUDES" ||
         s == "ACQUIRE" || s == "ACQUIRE_SHARED" || s == "RELEASE" ||
         s == "RELEASE_SHARED" || s == "TRY_ACQUIRE" || s == "GUARDED_BY" ||
         s == "PT_GUARDED_BY" || s == "ACQUIRED_BEFORE" ||
         s == "ACQUIRED_AFTER" || s == "ASSERT_CAPABILITY" ||
         s == "RETURN_CAPABILITY" || s == "NO_THREAD_SAFETY_ANALYSIS";
}

bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",   "switch",        "return",
      "sizeof", "alignof", "catch",  "throw",         "new",
      "delete", "assert", "decltype", "static_assert", "noexcept",
      "defined"};
  return kKeywords.count(s) > 0;
}

class FileParser {
 public:
  FileParser(std::string file, const std::vector<Token>& toks,
             ParseOutput* out)
      : file_(std::move(file)), toks_(toks), out_(out) {}

  void Parse() { ParseScopeBody(/*is_class=*/false, /*top_level=*/true); }

 private:
  const Token& Tok(size_t i) const {
    static const Token kEof{Token::Kind::kPunct, "", 0};
    return i < toks_.size() ? toks_[i] : kEof;
  }
  bool AtEnd() const { return i_ >= toks_.size(); }

  // Skips a balanced group starting at the opener toks_[i_] (one of ( [ {).
  // Leaves i_ just past the matching closer.
  void SkipBalanced(const char* open, const char* close) {
    int depth = 0;
    while (!AtEnd()) {
      if (Tok(i_).Is(open)) ++depth;
      if (Tok(i_).Is(close) && --depth == 0) {
        ++i_;
        return;
      }
      ++i_;
    }
  }

  // Skips <...> template arguments starting at a '<'. Treats << and >> as
  // two brackets each (good enough for declarations).
  void SkipAngles() {
    int depth = 0;
    while (!AtEnd()) {
      const std::string& t = Tok(i_).text;
      if (t == "<") depth += 1;
      if (t == "<<") depth += 2;
      if (t == ">") depth -= 1;
      if (t == ">>") depth -= 2;
      ++i_;
      if (depth <= 0) return;
    }
  }

  void SkipToSemicolon() {
    while (!AtEnd() && !Tok(i_).Is(";")) {
      if (Tok(i_).Is("{")) {
        SkipBalanced("{", "}");
        continue;
      }
      if (Tok(i_).Is("(")) {
        SkipBalanced("(", ")");
        continue;
      }
      ++i_;
    }
    if (!AtEnd()) ++i_;  // the ';'
  }

  std::string ScopePath() const {
    std::string path;
    for (const auto& [name, is_class] : scopes_) {
      if (name.empty()) continue;
      if (!path.empty()) path += "::";
      path += name;
    }
    return path;
  }

  std::vector<std::string> ClassChain() const {
    // Innermost class first; each entry is the class's full path.
    std::vector<std::string> chain;
    std::string path;
    std::vector<std::string> class_paths;
    for (const auto& [name, is_class] : scopes_) {
      if (name.empty()) continue;
      if (!path.empty()) path += "::";
      path += name;
      if (is_class) class_paths.push_back(path);
    }
    for (auto it = class_paths.rbegin(); it != class_paths.rend(); ++it) {
      chain.push_back(*it);
    }
    return chain;
  }

  void ParseScopeBody(bool is_class, bool top_level) {
    while (!AtEnd()) {
      const Token& t = Tok(i_);
      if (t.Is("}")) {
        if (!top_level) ++i_;
        return;
      }
      if (t.Is(";")) {
        ++i_;
        continue;
      }
      if (t.IsIdent() && (t.text == "public" || t.text == "private" ||
                          t.text == "protected") &&
          Tok(i_ + 1).Is(":")) {
        i_ += 2;
        continue;
      }
      if (t.Is("namespace")) {
        ParseNamespace();
        continue;
      }
      if ((t.Is("class") || t.Is("struct")) && !prev_was_enum_) {
        ParseClass();
        continue;
      }
      if (t.Is("enum")) {
        ++i_;
        if (Tok(i_).Is("class") || Tok(i_).Is("struct")) ++i_;
        SkipToSemicolon();
        continue;
      }
      if (t.Is("template")) {
        ++i_;
        if (Tok(i_).Is("<")) SkipAngles();
        continue;
      }
      if (t.Is("using") || t.Is("typedef") || t.Is("friend") ||
          t.Is("static_assert") || t.Is("extern")) {
        SkipToSemicolon();
        continue;
      }
      ParseMemberDecl(is_class);
    }
  }

  void ParseNamespace() {
    ++i_;  // namespace
    std::string name;
    while (Tok(i_).IsIdent()) {
      if (!name.empty()) name += "::";
      name += Tok(i_).text;
      ++i_;
      if (Tok(i_).Is("::")) ++i_;
    }
    if (Tok(i_).Is("=")) {  // namespace alias
      SkipToSemicolon();
      return;
    }
    if (!Tok(i_).Is("{")) {  // something unexpected; resync
      SkipToSemicolon();
      return;
    }
    ++i_;
    scopes_.push_back({name, false});
    ParseScopeBody(/*is_class=*/false, /*top_level=*/false);
    scopes_.pop_back();
  }

  void ParseClass() {
    ++i_;  // class/struct
    std::string name;
    while (!AtEnd()) {
      const Token& t = Tok(i_);
      if (t.Is("{") || t.Is(";") || t.Is(":")) break;
      if (t.IsIdent()) {
        name = t.text;
        ++i_;
        if (Tok(i_).Is("(")) SkipBalanced("(", ")");  // attribute macro
        if (Tok(i_).Is("<")) SkipAngles();            // specialization args
        continue;
      }
      ++i_;
    }
    if (Tok(i_).Is(";")) {  // forward declaration
      ++i_;
      return;
    }
    if (Tok(i_).Is(":")) {  // base-class list
      while (!AtEnd() && !Tok(i_).Is("{")) {
        if (Tok(i_).Is("<")) {
          SkipAngles();
          continue;
        }
        ++i_;
      }
    }
    if (!Tok(i_).Is("{")) return;
    ++i_;
    scopes_.push_back({name, true});
    out_->classes[ScopePath()];  // materialize even if empty
    ParseScopeBody(/*is_class=*/true, /*top_level=*/false);
    scopes_.pop_back();
    SkipToSemicolon();  // trailing `;` (tolerates `} name;`)
  }

  // Reads the (...) group starting at i_ (must be '(') into a LockExpr list
  // split on top-level commas. Leaves i_ past the ')'.
  std::vector<LockExpr> ParseExprArgs() {
    std::vector<LockExpr> args;
    LockExpr cur;
    size_t tokens_in_cur = 0;
    int depth = 0;
    cur.line = Tok(i_).line;
    while (!AtEnd()) {
      const Token& t = Tok(i_);
      if (t.Is("(")) {
        ++depth;
        ++i_;
        continue;
      }
      if (t.Is(")")) {
        if (--depth == 0) {
          ++i_;
          break;
        }
        ++i_;
        continue;
      }
      if (t.Is(",") && depth == 1) {
        cur.single_ident = tokens_in_cur == 1 && cur.idents.size() == 1;
        if (!cur.idents.empty()) args.push_back(cur);
        cur = LockExpr{};
        cur.line = t.line;
        tokens_in_cur = 0;
        ++i_;
        continue;
      }
      if (t.IsIdent()) cur.idents.push_back(t.text);
      if (t.Is("[")) cur.has_bracket = true;
      ++tokens_in_cur;
      ++i_;
    }
    cur.single_ident = tokens_in_cur == 1 && cur.idents.size() == 1;
    if (!cur.idents.empty()) args.push_back(cur);
    return args;
  }

  // Parses the parameter list starting at '('; fills arg counts and names.
  void ParseParams(FunctionInfo* fn) {
    int depth = 0;
    size_t params = 0;
    size_t defaults = 0;
    bool variadic = false;
    bool any_tokens = false;
    bool in_default = false;
    std::string last_ident;
    auto finish_param = [&] {
      if (!any_tokens) return;
      ++params;
      fn->param_names.push_back(last_ident);
      last_ident.clear();
      any_tokens = false;
      in_default = false;
    };
    while (!AtEnd()) {
      const Token& t = Tok(i_);
      if (t.Is("(")) {
        ++depth;
        ++i_;
        continue;
      }
      if (t.Is(")")) {
        if (--depth == 0) {
          ++i_;
          break;
        }
        ++i_;
        continue;
      }
      if (t.Is("<")) {
        SkipAngles();
        continue;
      }
      if (depth == 1 && t.Is(",")) {
        finish_param();
        ++i_;
        continue;
      }
      if (depth == 1 && t.Is("=") && !in_default) {
        in_default = true;
        ++defaults;
      }
      if (depth == 1 && t.Is("...")) variadic = true;
      if (depth == 1 && t.IsIdent() && !in_default) last_ident = t.text;
      any_tokens = true;
      ++i_;
    }
    finish_param();
    fn->max_args = variadic ? static_cast<size_t>(-1) : params;
    fn->min_args = params - defaults;
  }

  // A declaration at class or namespace scope: a member variable, a
  // function declaration, or a function definition (whose body we walk).
  void ParseMemberDecl(bool is_class) {
    prev_was_enum_ = false;
    FunctionInfo fn;
    bool cand = false;            // saw name(...)
    bool trailing = false;        // past the candidate's parameter list
    std::string cand_name;        // possibly qualified A::B::name
    const size_t decl_start = i_;

    while (!AtEnd()) {
      const Token& t = Tok(i_);
      if (t.Is(";")) {
        ++i_;
        break;
      }
      if (t.Is("}")) break;  // tolerate unbalanced input

      // Mutex member: `Mutex name;` (optionally dta::Mutex / mutable).
      if (is_class && t.Is("Mutex") && Tok(i_ + 1).IsIdent() &&
          Tok(i_ + 2).Is(";")) {
        out_->classes[ScopePath()].mutex_members[Tok(i_ + 1).text] =
            MutexMember{file_, Tok(i_ + 1).line};
        i_ += 3;
        return;
      }

      if (t.IsIdent() && IsAnnotationName(t.text) && Tok(i_ + 1).Is("(")) {
        const std::string ann = t.text;
        ++i_;
        std::vector<LockExpr> args = ParseExprArgs();
        if (ann == "GUARDED_BY" || ann == "PT_GUARDED_BY") {
          if (is_class) {
            ClassInfo& ci = out_->classes[ScopePath()];
            ci.guarded_args.insert(ci.guarded_args.end(), args.begin(),
                                   args.end());
          }
        } else if (ann == "REQUIRES" || ann == "REQUIRES_SHARED") {
          fn.requires_locks.insert(fn.requires_locks.end(), args.begin(),
                                   args.end());
        } else if (ann == "EXCLUDES" || ann == "ACQUIRE" ||
                   ann == "ACQUIRE_SHARED" || ann == "TRY_ACQUIRE") {
          fn.excludes_locks.insert(fn.excludes_locks.end(), args.begin(),
                                   args.end());
        }
        continue;
      }

      if (t.Is("{")) {
        // Function body, member brace-init, or initializer list.
        const std::string& prev = Tok(i_ - 1).text;
        const bool body_ok =
            cand && (prev == ")" || prev == "const" || prev == "noexcept" ||
                     prev == "override" || prev == "final" || trailing);
        if (body_ok) {
          FinalizeFunction(&fn, cand_name, /*has_body=*/true);
          return;
        }
        SkipBalanced("{", "}");
        continue;
      }

      if (t.Is("(")) {
        // Candidate function signature if directly preceded by a name.
        std::string name;
        size_t name_end = i_;
        if (Tok(i_ - 1).IsIdent() && !IsCallKeyword(Tok(i_ - 1).text)) {
          name = Tok(i_ - 1).text;
          name_end = i_ - 1;
        } else if (Tok(i_ - 1).kind == Token::Kind::kPunct &&
                   (Tok(i_ - 2).Is("operator") ||
                    (Tok(i_ - 2).kind == Token::Kind::kPunct &&
                     Tok(i_ - 3).Is("operator")))) {
          // operator< (  /  operator[] (
          size_t op = Tok(i_ - 2).Is("operator") ? i_ - 2 : i_ - 3;
          name = "operator";
          for (size_t k = op + 1; k < i_; ++k) name += Tok(k).text;
          name_end = op;
        }
        if (!name.empty() && !cand) {
          // Collect A:: qualifiers (and a dtor's ~) before the name.
          size_t k = name_end;
          if (Tok(k - 1).Is("~")) {
            name = "~" + name;
            --k;
          }
          while (Tok(k - 1).Is("::") && Tok(k - 2).IsIdent()) {
            name = Tok(k - 2).text + "::" + name;
            k -= 2;
          }
          cand = true;
          cand_name = name;
          ParseParams(&fn);
          // `operator()` has a second parens group holding the real params.
          if (fn.param_names.empty() && name == "operator" &&
              Tok(i_).Is("(")) {
            cand_name = "operator()";
            ParseParams(&fn);
          }
          continue;
        }
        SkipBalanced("(", ")");
        continue;
      }

      if (cand && t.Is(":")) {
        // Constructor initializer list: skip initializers, find the body.
        ++i_;
        while (!AtEnd()) {
          const Token& u = Tok(i_);
          if (u.Is("(")) {
            SkipBalanced("(", ")");
            continue;
          }
          if (u.Is("{")) {
            if (Tok(i_ - 1).IsIdent()) {  // brace-initializer b_{2}
              SkipBalanced("{", "}");
              continue;
            }
            FinalizeFunction(&fn, cand_name, /*has_body=*/true);
            return;
          }
          if (u.Is(";")) {  // not an init list after all
            ++i_;
            break;
          }
          ++i_;
        }
        break;
      }

      if (cand && (t.Is("const") || t.Is("noexcept") || t.Is("override") ||
                   t.Is("final"))) {
        trailing = true;
        ++i_;
        continue;
      }
      if (cand && t.Is("=")) {  // = default / = delete / = 0
        SkipToSemicolon();
        break;
      }
      if (cand && t.Is(",")) {  // `int x = f(1), y;` — not a function
        cand = false;
        cand_name.clear();
        fn = FunctionInfo{};
        ++i_;
        continue;
      }
      if (t.Is("<")) {
        SkipAngles();
        continue;
      }
      ++i_;
    }
    if (cand) FinalizeFunction(&fn, cand_name, /*has_body=*/false);
    (void)decl_start;
  }

  void FinalizeFunction(FunctionInfo* fn, const std::string& cand_name,
                        bool has_body) {
    fn->file = file_;
    fn->has_body = has_body;
    fn->line = Tok(i_).line;

    // Split a qualified candidate (A::B::name) into class path + name.
    std::string name = cand_name;
    std::string qual;
    size_t pos;
    while ((pos = name.find("::")) != std::string::npos) {
      if (!qual.empty()) qual += "::";
      qual += name.substr(0, pos);
      name = name.substr(pos + 2);
    }
    fn->name = name;
    const std::string scope = ScopePath();
    fn->class_chain = ClassChain();
    if (!qual.empty()) {
      // Out-of-class definition: the qualifier names the class (resolved
      // later against the registry; store the full path now).
      std::string cls = scope.empty() ? qual : scope + "::" + qual;
      fn->class_chain.insert(fn->class_chain.begin(), cls);
      fn->qualified = cls + "::" + name;
    } else {
      fn->qualified = scope.empty() ? name : scope + "::" + name;
    }
    const std::string& inner =
        fn->class_chain.empty() ? std::string() : fn->class_chain.front();
    const std::string cls_last = inner.empty()
                                     ? std::string()
                                     : inner.substr(inner.rfind("::") ==
                                                            std::string::npos
                                                        ? 0
                                                        : inner.rfind("::") +
                                                              2);
    fn->is_ctor_dtor = !cls_last.empty() &&
                       (name == cls_last || name == "~" + cls_last);

    if (has_body) ParseFunctionBody(fn);
    out_->functions.push_back(std::move(*fn));
  }

  // Walks a function body from its '{': tracks brace depth, the stack of
  // scoped MutexLock acquisitions, local Mutex declarations, and calls.
  void ParseFunctionBody(FunctionInfo* fn) {
    ++i_;  // '{'
    int depth = 1;
    std::vector<std::pair<size_t, int>> lock_stack;  // (acq index, depth)

    auto held_now = [&] {
      std::vector<size_t> held;
      for (const auto& [idx, d] : lock_stack) held.push_back(idx);
      return held;
    };

    while (!AtEnd() && depth > 0) {
      const Token& t = Tok(i_);
      if (t.Is("{")) {
        ++depth;
        ++i_;
        continue;
      }
      if (t.Is("}")) {
        while (!lock_stack.empty() && lock_stack.back().second == depth) {
          lock_stack.pop_back();
        }
        --depth;
        ++i_;
        continue;
      }
      if (t.Is("Mutex") && Tok(i_ + 1).IsIdent() &&
          (Tok(i_ + 2).Is(";") || Tok(i_ + 2).Is("{"))) {
        fn->local_mutexes.insert(Tok(i_ + 1).text);
        i_ += 2;
        continue;
      }
      if (t.Is("MutexLock") && Tok(i_ + 1).IsIdent() && Tok(i_ + 2).Is("(")) {
        const size_t line = t.line;
        i_ += 2;
        std::vector<LockExpr> args = ParseExprArgs();
        if (args.size() == 1) {
          Acquisition acq;
          acq.expr = args[0];
          acq.line = line;
          acq.held = held_now();
          lock_stack.push_back({fn->acqs.size(), depth});
          fn->acqs.push_back(std::move(acq));
        }
        continue;
      }
      if (t.IsIdent() && Tok(i_ + 1).Is("(") && !IsCallKeyword(t.text) &&
          !IsAnnotationName(t.text) && t.text != "MutexLock" &&
          t.text != "Mutex" && t.text != "CondVar") {
        CallSite call;
        call.name = t.text;
        call.line = t.line;
        call.held = held_now();
        if (Tok(i_ - 1).Is("::") && Tok(i_ - 2).IsIdent()) {
          call.qualifier = Tok(i_ - 2).text;
        } else if (Tok(i_ - 1).Is(".") || Tok(i_ - 1).Is("->")) {
          call.has_receiver = true;
        }
        // Count top-level commas by lookahead; do not consume — nested
        // calls in the argument list must be scanned too.
        int pd = 0;
        int bd = 0;
        bool any = false;
        size_t commas = 0;
        for (size_t k = i_ + 1; k < toks_.size(); ++k) {
          const std::string& u = Tok(k).text;
          if (u == "(") ++pd;
          if (u == ")" && --pd == 0) break;
          if (u == "{") ++bd;
          if (u == "}") --bd;
          if (pd == 1 && bd == 0 && u == ",") ++commas;
          if (u != "(" && u != ")") any = true;
        }
        call.argc = any ? commas + 1 : 0;
        fn->calls.push_back(std::move(call));
        ++i_;
        continue;
      }
      ++i_;
    }
  }

  const std::string file_;
  const std::vector<Token>& toks_;
  ParseOutput* out_;
  size_t i_ = 0;
  std::vector<std::pair<std::string, bool>> scopes_;  // (name, is_class)
  bool prev_was_enum_ = false;
};

// ---- Lock identity normalization -----------------------------------------

// Resolves lock expressions to stable class-qualified identities: the
// member name (last identifier) is looked up first in the function's
// enclosing classes and their nested classes, then globally if unique.
// Locals become function-qualified; anything unresolvable becomes ::name,
// which keeps same-named unresolvable locks distinct from every class
// member.
class LockResolver {
 public:
  explicit LockResolver(const ParseOutput& model) : model_(model) {
    for (const auto& [path, info] : model.classes) {
      for (const auto& [member, site] : info.mutex_members) {
        owners_[member].push_back(path);
      }
    }
  }

  std::string Resolve(const LockExpr& expr, const FunctionInfo& fn) const {
    if (expr.idents.empty()) return "::?";
    const std::string& last = expr.idents.back();
    if (expr.single_ident && fn.local_mutexes.count(last) > 0) {
      return fn.qualified + "::" + last;
    }
    for (const std::string& cls : fn.class_chain) {
      std::vector<std::string> hits;
      auto it = owners_.find(last);
      if (it != owners_.end()) {
        for (const std::string& owner : it->second) {
          if (owner == cls ||
              (owner.size() > cls.size() + 2 &&
               owner.compare(0, cls.size(), cls) == 0 &&
               owner.compare(cls.size(), 2, "::") == 0)) {
            hits.push_back(owner);
          }
        }
      }
      if (hits.size() == 1) return hits[0] + "::" + last;
      if (hits.size() > 1) return "::" + last;
    }
    auto it = owners_.find(last);
    if (it != owners_.end() && it->second.size() == 1) {
      return it->second[0] + "::" + last;
    }
    return "::" + last;
  }

  // True if the acquisition could carry an EXCLUDES annotation: a bare
  // member of an enclosing class, or a member reached through a parameter
  // (EXCLUDES(param.mu)). Locals and container-indexed paths cannot be
  // named in an annotation.
  bool Annotatable(const LockExpr& expr, const FunctionInfo& fn) const {
    if (expr.idents.empty() || expr.has_bracket) return false;
    const std::string& root = expr.idents.front();
    if (expr.single_ident) {
      if (fn.local_mutexes.count(root) > 0) return false;
      for (const std::string& cls : fn.class_chain) {
        auto it = model_.classes.find(cls);
        if (it != model_.classes.end() &&
            it->second.mutex_members.count(root) > 0) {
          return true;
        }
      }
      return false;
    }
    return std::find(fn.param_names.begin(), fn.param_names.end(), root) !=
           fn.param_names.end();
  }

 private:
  const ParseOutput& model_;
  std::map<std::string, std::vector<std::string>> owners_;
};

// ---- Edges, cycles, manifest ---------------------------------------------

struct EdgeSite {
  std::string file;
  size_t line = 0;
};

using EdgeMap = std::map<std::pair<std::string, std::string>,
                         std::vector<EdgeSite>>;

// Tarjan strongly-connected components over the lock graph.
class SccFinder {
 public:
  explicit SccFinder(const EdgeMap& edges) {
    for (const auto& [edge, sites] : edges) {
      adj_[edge.first].push_back(edge.second);
      adj_[edge.second];  // ensure node exists
    }
    for (const auto& [node, tos] : adj_) {
      if (index_.count(node) == 0) Strongconnect(node);
    }
  }

  // Component id per node; nodes in a multi-node SCC (or with a self-loop)
  // are "cyclic".
  const std::map<std::string, int>& component() const { return component_; }

 private:
  void Strongconnect(const std::string& v0) {
    // Iterative Tarjan (explicit stack) — lock graphs are tiny, but fixture
    // inputs are arbitrary.
    struct Frame {
      std::string v;
      size_t next = 0;
    };
    std::vector<Frame> call_stack{{v0}};
    while (!call_stack.empty()) {
      Frame& f = call_stack.back();
      const std::string v = f.v;
      if (f.next == 0) {
        index_[v] = lowlink_[v] = counter_++;
        stack_.push_back(v);
        on_stack_.insert(v);
      }
      bool recursed = false;
      auto& tos = adj_[v];
      while (f.next < tos.size()) {
        const std::string& w = tos[f.next++];
        if (index_.count(w) == 0) {
          call_stack.push_back({w});
          recursed = true;
          break;
        }
        if (on_stack_.count(w) > 0) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
      if (recursed) continue;
      if (lowlink_[v] == index_[v]) {
        int comp = next_component_++;
        while (true) {
          const std::string w = stack_.back();
          stack_.pop_back();
          on_stack_.erase(w);
          component_[w] = comp;
          if (w == v) break;
        }
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& parent = call_stack.back();
        lowlink_[parent.v] = std::min(lowlink_[parent.v], lowlink_[v]);
      }
    }
  }

  std::map<std::string, std::vector<std::string>> adj_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::map<std::string, int> component_;
  std::vector<std::string> stack_;
  std::set<std::string> on_stack_;
  int counter_ = 0;
  int next_component_ = 0;
};

struct ManifestEntry {
  std::string from;
  std::string to;
  size_t line = 0;  // 1-based line in the manifest file
};

bool ReadManifest(const fs::path& path, std::vector<ManifestEntry>* out,
                  std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read manifest " + path.string();
    return false;
  }
  std::string text;
  size_t lineno = 0;
  while (std::getline(in, text)) {
    ++lineno;
    size_t b = text.find_first_not_of(" \t");
    if (b == std::string::npos || text[b] == '#') continue;
    const size_t arrow = text.find(" -> ");
    if (arrow == std::string::npos) {
      *error = path.string() + ":" + std::to_string(lineno) +
               ": malformed manifest line (want 'A -> B')";
      return false;
    }
    ManifestEntry e;
    e.from = text.substr(b, arrow - b);
    e.to = text.substr(arrow + 4);
    while (!e.to.empty() && (e.to.back() == ' ' || e.to.back() == '\t')) {
      e.to.pop_back();
    }
    e.line = lineno;
    out->push_back(std::move(e));
  }
  return true;
}

// ---- Determinism flow (unordered-flow) -----------------------------------

bool IsUnorderedType(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

bool IsEmissionCall(const std::string& name) {
  static const std::vector<std::string> kStems = {
      "Emit", "Write", "Export", "Serialize", "Print", "Output"};
  for (const std::string& stem : kStems) {
    if (name.find(stem) != std::string::npos) return true;
  }
  return false;
}

bool IsAccumulationCall(const std::string& name) {
  return name == "push_back" || name == "emplace_back" || name == "append" ||
         name == "emplace";
}

// Emits unordered-flow findings for one file's token stream.
void AnalyzeUnorderedFlow(
    const std::string& rel_path, const std::vector<Token>& toks,
    const std::function<void(const std::string&, size_t, const std::string&,
                             const std::string&)>& emit) {
  // Variable (and member) names declared as unordered containers anywhere
  // in the file.
  std::set<std::string> unordered_vars;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdent() || !IsUnorderedType(toks[i].text)) continue;
    size_t j = i + 1;
    if (toks[j].Is("<")) {
      int depth = 0;
      while (j < toks.size()) {
        const std::string& t = toks[j].text;
        if (t == "<") depth += 1;
        if (t == "<<") depth += 2;
        if (t == ">") depth -= 1;
        if (t == ">>") depth -= 2;
        ++j;
        if (depth <= 0) break;
      }
    }
    while (j < toks.size() &&
           (toks[j].Is("&") || toks[j].Is("*") || toks[j].Is("const"))) {
      ++j;
    }
    if (j < toks.size() && toks[j].IsIdent() &&
        !(j + 1 < toks.size() && toks[j + 1].Is("("))) {
      unordered_vars.insert(toks[j].text);
    }
  }

  for (size_t i = 0; i < toks.size(); ++i) {
    if (!toks[i].Is("for") || i + 1 >= toks.size() || !toks[i + 1].Is("(")) {
      continue;
    }
    // Find the range-for ':' and the closing ')'.
    int pd = 0;
    int bd = 0;  // [] depth, for structured bindings
    size_t colon = 0;
    size_t close = 0;
    for (size_t k = i + 1; k < toks.size(); ++k) {
      const std::string& t = toks[k].text;
      if (t == "(") ++pd;
      if (t == ")") {
        if (--pd == 0) {
          close = k;
          break;
        }
      }
      if (t == "[") ++bd;
      if (t == "]") --bd;
      if (t == ":" && pd == 1 && bd == 0 && colon == 0) colon = k;
    }
    if (colon == 0 || close == 0) continue;

    // Is the range expression an unordered container?
    std::string container;
    for (size_t k = colon + 1; k < close; ++k) {
      if (toks[k].IsIdent() && (unordered_vars.count(toks[k].text) > 0 ||
                                IsUnorderedType(toks[k].text))) {
        container = toks[k].text;
      }
    }
    if (container.empty()) continue;

    // Body: a brace block or a single statement.
    size_t body_begin = close + 1;
    size_t body_end = body_begin;  // exclusive
    if (body_begin < toks.size() && toks[body_begin].Is("{")) {
      int depth = 0;
      for (size_t k = body_begin; k < toks.size(); ++k) {
        if (toks[k].Is("{")) ++depth;
        if (toks[k].Is("}") && --depth == 0) {
          body_end = k + 1;
          break;
        }
      }
    } else {
      for (size_t k = body_begin; k < toks.size(); ++k) {
        if (toks[k].Is(";")) {
          body_end = k + 1;
          break;
        }
      }
    }

    bool emission = false;
    bool accumulation = false;
    for (size_t k = body_begin; k < body_end; ++k) {
      const Token& t = toks[k];
      if (t.Is("<<")) emission = true;
      if (t.Is("+=")) accumulation = true;
      if (t.IsIdent() && k + 1 < toks.size() && toks[k + 1].Is("(")) {
        if (IsEmissionCall(t.text)) emission = true;
        if (IsAccumulationCall(t.text)) accumulation = true;
      }
    }
    if (!emission && !accumulation) continue;

    if (!emission) {
      // Accumulation is fine when the result is sorted before it can
      // matter: look for a sort in the rest of the enclosing block.
      int depth = 0;
      bool sorted_after = false;
      for (size_t k = body_end; k < toks.size(); ++k) {
        if (toks[k].Is("{")) ++depth;
        if (toks[k].Is("}")) {
          if (--depth < 0) break;  // enclosing block closed
        }
        if (toks[k].IsIdent() &&
            (toks[k].text == "sort" || toks[k].text == "stable_sort") &&
            k + 1 < toks.size() && toks[k + 1].Is("(")) {
          sorted_after = true;
          break;
        }
      }
      if (sorted_after) continue;
    }

    emit(rel_path, toks[i].line, "unordered-flow",
         std::string("iteration over unordered container '") + container +
             (emission
                  ? "' flows into emission; hash order leaks into output "
                    "bytes — sort into a vector first"
                  : "' feeds order-sensitive accumulation with no "
                    "intervening sort — sort the results before use") +
             " (suppress with 'lint: unordered-flow')");
  }
}

// ---- Driver --------------------------------------------------------------

int Usage() {
  std::cerr << "usage: dta_analyze [--root=DIR] [--exclude=p1,p2]\n"
               "                   [--disable=r1,r2] [--audit]\n"
               "                   [--manifest=PATH | --no-manifest]\n"
               "                   [--write-manifest] [--dot=FILE]\n"
               "                   [--check-expectations] PATH...\n"
               "rules: lock-cycle lock-manifest unordered-flow "
               "audit-guarded audit-excludes\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::set<std::string> disabled;
  std::vector<std::string> excluded;
  std::vector<std::string> inputs;
  bool check_expectations = false;
  bool audit = false;
  bool no_manifest = false;
  bool write_manifest = false;
  std::string manifest_override;
  std::string dot_file;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--exclude=", 0) == 0) {
      std::string list = arg.substr(10);
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) excluded.push_back(list.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg.rfind("--disable=", 0) == 0) {
      for (const std::string& r : dta::lex::ParseRuleList(arg.substr(10))) {
        disabled.insert(r);
      }
    } else if (arg.rfind("--manifest=", 0) == 0) {
      manifest_override = arg.substr(11);
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_file = arg.substr(6);
    } else if (arg == "--no-manifest") {
      no_manifest = true;
    } else if (arg == "--write-manifest") {
      write_manifest = true;
    } else if (arg == "--audit") {
      audit = true;
    } else if (arg == "--check-expectations") {
      check_expectations = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dta_analyze: unknown flag '" << arg << "'\n";
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();

  std::set<fs::path> files;
  std::string error;
  if (!dta::lex::CollectFiles(root, inputs, excluded, &files, &error)) {
    std::cerr << "dta_analyze: " << error << "\n";
    return 2;
  }

  // ---- Parse every file into one model -----------------------------------
  ParseOutput model;
  std::map<std::string, std::vector<SourceLine>> lines_by_file;
  std::map<std::string, std::vector<Token>> tokens_by_file;
  for (const fs::path& file : files) {
    // The lock primitive layer implements MutexLock/CondVar in terms of raw
    // std primitives; its internals are below the level this analysis
    // models.
    if (file.filename() == "mutex.h") continue;
    std::vector<std::string> raw;
    if (!dta::lex::ReadLines(file, &raw)) {
      std::cerr << "dta_analyze: cannot read " << file << "\n";
      return 2;
    }
    const std::string rel = dta::lex::RelPath(file, root);
    lines_by_file[rel] = dta::lex::PreprocessSource(raw);
    tokens_by_file[rel] = dta::lex::Tokenize(lines_by_file[rel]);
    FileParser(rel, tokens_by_file[rel], &model).Parse();
  }

  std::vector<Finding> findings;
  std::vector<Finding> expectations;
  auto emit = [&](const std::string& file, size_t line0,
                  const std::string& rule, const std::string& message) {
    if (disabled.count(rule) > 0) return;
    auto it = lines_by_file.find(file);
    if (it != lines_by_file.end()) {
      const std::vector<SourceLine>& lines = it->second;
      if (line0 < lines.size() && lines[line0].suppressed.count(rule) > 0) {
        return;
      }
      if (line0 > 0 && line0 - 1 < lines.size() &&
          lines[line0 - 1].suppressed.count(rule) > 0) {
        return;
      }
    }
    findings.push_back(Finding{file, line0 + 1, rule, message});
  };
  if (check_expectations) {
    for (const auto& [file, lines] : lines_by_file) {
      for (size_t i = 0; i < lines.size(); ++i) {
        for (const std::string& rule : lines[i].expected) {
          expectations.push_back(Finding{file, i + 1, rule, ""});
        }
      }
    }
  }

  // ---- Resolve locks, merge annotations, resolve calls -------------------
  LockResolver resolver(model);

  // Annotation sets are merged across declaration and definition records of
  // the same function (header decl carries the contract, .cc def the body).
  auto merge_key = [](const FunctionInfo& f) {
    return f.qualified + "/" +
           (f.max_args == static_cast<size_t>(-1)
                ? std::string("v")
                : std::to_string(f.max_args));
  };
  std::map<std::string, std::set<std::string>> merged_excludes;
  std::map<std::string, std::set<std::string>> merged_requires;
  for (const FunctionInfo& f : model.functions) {
    for (const LockExpr& e : f.excludes_locks) {
      merged_excludes[merge_key(f)].insert(resolver.Resolve(e, f));
    }
    for (const LockExpr& e : f.requires_locks) {
      merged_requires[merge_key(f)].insert(resolver.Resolve(e, f));
    }
  }

  // Call resolution index: name -> candidate function indices (bodies only;
  // a declaration's acquisition set is empty by construction).
  std::map<std::string, std::vector<size_t>> by_name;
  for (size_t fi = 0; fi < model.functions.size(); ++fi) {
    if (model.functions[fi].has_body) {
      by_name[model.functions[fi].name].push_back(fi);
    }
  }
  auto resolve_call = [&](const CallSite& call,
                          const FunctionInfo& caller) -> int {
    auto it = by_name.find(call.name);
    if (it == by_name.end()) return -1;
    std::vector<size_t> cands;
    for (size_t fi : it->second) {
      const FunctionInfo& f = model.functions[fi];
      if (call.argc < f.min_args || call.argc > f.max_args) continue;
      if (!call.qualifier.empty()) {
        // X::name — the qualifier must be a suffix component of the class.
        bool match = false;
        for (const std::string& cls : f.class_chain) {
          if (cls == call.qualifier ||
              (cls.size() > call.qualifier.size() + 2 &&
               cls.compare(cls.size() - call.qualifier.size(),
                           call.qualifier.size(), call.qualifier) == 0 &&
               cls[cls.size() - call.qualifier.size() - 1] == ':')) {
            match = true;
            break;
          }
        }
        if (!match) continue;
      }
      cands.push_back(fi);
    }
    if (cands.size() == 1) return static_cast<int>(cands[0]);
    if (cands.size() > 1 && !caller.class_chain.empty()) {
      // Prefer a same-class method for unqualified calls.
      std::vector<size_t> same;
      for (size_t fi : cands) {
        const FunctionInfo& f = model.functions[fi];
        if (!f.class_chain.empty() &&
            f.class_chain.front() == caller.class_chain.front()) {
          same.push_back(fi);
        }
      }
      if (same.size() == 1) return static_cast<int>(same[0]);
    }
    return -1;  // ambiguous or unknown: no lock edges from this call
  };

  // Transitive acquisition sets: fixpoint over the call graph.
  std::vector<std::set<std::string>> acq_sets(model.functions.size());
  std::vector<std::vector<int>> resolved_calls(model.functions.size());
  for (size_t fi = 0; fi < model.functions.size(); ++fi) {
    const FunctionInfo& f = model.functions[fi];
    for (const Acquisition& a : f.acqs) {
      acq_sets[fi].insert(resolver.Resolve(a.expr, f));
    }
    for (const CallSite& c : f.calls) {
      resolved_calls[fi].push_back(resolve_call(c, f));
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t fi = 0; fi < model.functions.size(); ++fi) {
      for (int callee : resolved_calls[fi]) {
        if (callee < 0) continue;
        for (const std::string& lock : acq_sets[callee]) {
          if (acq_sets[fi].insert(lock).second) changed = true;
        }
      }
    }
  }

  // ---- Lock-order edges ---------------------------------------------------
  EdgeMap edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           const std::string& file, size_t line) {
    if (from == to) return;  // same identity: re-acquisition is a clang
                             // -Wthread-safety diagnosis, not an order edge
    edges[{from, to}].push_back(EdgeSite{file, line});
  };
  for (size_t fi = 0; fi < model.functions.size(); ++fi) {
    const FunctionInfo& f = model.functions[fi];
    if (!f.has_body) continue;
    // REQUIRES locks are held for the whole body.
    std::vector<std::string> base_held;
    for (const LockExpr& e : f.requires_locks) {
      base_held.push_back(resolver.Resolve(e, f));
    }
    auto held_ids = [&](const std::vector<size_t>& held) {
      std::vector<std::string> ids = base_held;
      for (size_t hi : held) {
        ids.push_back(resolver.Resolve(f.acqs[hi].expr, f));
      }
      return ids;
    };
    for (const Acquisition& a : f.acqs) {
      const std::string to = resolver.Resolve(a.expr, f);
      for (const std::string& h : held_ids(a.held)) {
        add_edge(h, to, f.file, a.line);
      }
    }
    for (size_t ci = 0; ci < f.calls.size(); ++ci) {
      const int callee = resolved_calls[fi][ci];
      if (callee < 0) continue;
      const CallSite& c = f.calls[ci];
      const std::vector<std::string> held = held_ids(c.held);
      if (held.empty()) continue;
      for (const std::string& to : acq_sets[callee]) {
        for (const std::string& h : held) {
          add_edge(h, to, f.file, c.line);
        }
      }
    }
  }
  for (auto& [edge, sites] : edges) {
    std::sort(sites.begin(), sites.end(),
              [](const EdgeSite& a, const EdgeSite& b) {
                return std::tie(a.file, a.line) < std::tie(b.file, b.line);
              });
  }

  // ---- DOT / manifest outputs --------------------------------------------
  if (!dot_file.empty()) {
    std::ofstream out(dot_file);
    if (!out) {
      std::cerr << "dta_analyze: cannot write " << dot_file << "\n";
      return 2;
    }
    out << "digraph lock_order {\n";
    std::set<std::string> nodes;
    for (const auto& [edge, sites] : edges) {
      nodes.insert(edge.first);
      nodes.insert(edge.second);
    }
    for (const std::string& n : nodes) {
      out << "  \"" << n << "\";\n";
    }
    for (const auto& [edge, sites] : edges) {
      out << "  \"" << edge.first << "\" -> \"" << edge.second
          << "\" [label=\"" << sites.front().file << ":"
          << sites.front().line + 1 << "\"];\n";
    }
    out << "}\n";
  }

  const fs::path manifest_path =
      manifest_override.empty()
          ? root / "tools" / "lock_order.manifest"
          : (fs::path(manifest_override).is_absolute()
                 ? fs::path(manifest_override)
                 : root / manifest_override);
  if (write_manifest) {
    std::ofstream out(manifest_path);
    if (!out) {
      std::cerr << "dta_analyze: cannot write " << manifest_path << "\n";
      return 2;
    }
    out << "# Reviewed lock-order edges (A -> B: B is acquired while A is\n"
           "# held somewhere in the tree). dta_analyze fails on any edge\n"
           "# not listed here and on any entry no longer backed by code;\n"
           "# to bless a change, regenerate with\n"
           "#   dta_analyze --root=. --write-manifest <same inputs>\n"
           "# and review the diff of this file.\n";
    for (const auto& [edge, sites] : edges) {
      out << edge.first << " -> " << edge.second << "\n";
    }
    std::cout << "dta_analyze: wrote " << edges.size() << " edge(s) to "
              << manifest_path.string() << "\n";
    return 0;
  }

  // ---- lock-cycle ---------------------------------------------------------
  {
    SccFinder scc(edges);
    const auto& comp = scc.component();
    // Count nodes per component to identify multi-node SCCs.
    std::map<int, std::vector<std::string>> members;
    for (const auto& [node, c] : comp) members[c].push_back(node);
    for (const auto& [edge, sites] : edges) {
      const auto cf = comp.find(edge.first);
      const auto ct = comp.find(edge.second);
      if (cf == comp.end() || ct == comp.end()) continue;
      if (cf->second != ct->second) continue;
      if (members[cf->second].size() < 2) continue;
      std::string cycle;
      for (const std::string& m : members[cf->second]) {
        if (!cycle.empty()) cycle += ", ";
        cycle += m;
      }
      emit(sites.front().file, sites.front().line, "lock-cycle",
           "lock-order cycle: '" + edge.first + "' -> '" + edge.second +
               "' closes a cycle among {" + cycle +
               "}; two threads taking these locks in opposite orders "
               "deadlock");
    }
  }

  // ---- lock-manifest ------------------------------------------------------
  if (!no_manifest) {
    std::vector<ManifestEntry> manifest;
    std::string manifest_error;
    if (!ReadManifest(manifest_path, &manifest, &manifest_error)) {
      std::cerr << "dta_analyze: " << manifest_error << "\n";
      return 2;
    }
    std::set<std::pair<std::string, std::string>> blessed;
    for (const ManifestEntry& e : manifest) blessed.insert({e.from, e.to});
    for (const auto& [edge, sites] : edges) {
      if (blessed.count(edge) > 0) continue;
      emit(sites.front().file, sites.front().line, "lock-manifest",
           "unreviewed lock-order edge '" + edge.first + "' -> '" +
               edge.second + "'; if intended, bless it: dta_analyze "
               "--write-manifest, then review the manifest diff");
    }
    const std::string manifest_rel =
        dta::lex::RelPath(manifest_path, root);
    for (const ManifestEntry& e : manifest) {
      if (edges.count({e.from, e.to}) > 0) continue;
      if (disabled.count("lock-manifest") > 0) continue;
      findings.push_back(
          Finding{manifest_rel, e.line, "lock-manifest",
                  "stale manifest edge '" + e.from + "' -> '" + e.to +
                      "': no code path acquires these locks in this order "
                      "any more — delete the entry"});
    }
  }

  // ---- unordered-flow -----------------------------------------------------
  for (const auto& [file, toks] : tokens_by_file) {
    AnalyzeUnorderedFlow(file, toks, emit);
  }

  // ---- audit rules --------------------------------------------------------
  if (audit) {
    for (const auto& [cls, info] : model.classes) {
      for (const auto& [member, site] : info.mutex_members) {
        bool guarded = false;
        for (const LockExpr& g : info.guarded_args) {
          if (!g.idents.empty() && g.idents.back() == member) guarded = true;
        }
        if (!guarded) {
          emit(site.file, site.line, "audit-guarded",
               "mutex member '" + cls + "::" + member +
                   "' guards no member (no GUARDED_BY(" + member +
                   ") in the class); annotate what it protects or remove "
                   "it");
        }
      }
    }
    for (const FunctionInfo& f : model.functions) {
      if (!f.has_body || f.is_ctor_dtor) continue;
      const std::set<std::string>& declared = merged_excludes[merge_key(f)];
      for (const Acquisition& a : f.acqs) {
        if (!resolver.Annotatable(a.expr, f)) continue;
        const std::string id = resolver.Resolve(a.expr, f);
        if (declared.count(id) > 0) continue;
        emit(f.file, a.line, "audit-excludes",
             "'" + f.qualified + "' acquires '" + id +
                 "' but declares no EXCLUDES for it; callers cannot see "
                 "the no-deadlock contract");
      }
    }
  }

  // ---- Report -------------------------------------------------------------
  if (check_expectations) {
    const size_t mismatches =
        dta::lex::DiffExpectations(&findings, &expectations, std::cout);
    if (mismatches > 0) return 1;
    std::cout << "dta_analyze: expectations match (" << expectations.size()
              << " findings across " << lines_by_file.size() << " files)\n";
    return 0;
  }
  std::sort(findings.begin(), findings.end());
  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "dta_analyze: " << findings.size() << " finding(s), "
              << edges.size() << " lock-order edge(s) across "
              << lines_by_file.size() << " file(s)\n";
    return 1;
  }
  std::cout << "dta_analyze: clean (" << edges.size()
            << " lock-order edge(s), " << model.functions.size()
            << " functions across " << lines_by_file.size() << " files)\n";
  return 0;
}
