// dta_lint: repo-specific determinism and concurrency-discipline checks.
//
// DTA promises bit-identical recommendations at any thread count and
// byte-identical checkpoints across runs; those guarantees rest on source
// conventions no general-purpose tool knows about. This linter enforces
// them as a build step (ctest `DtaLintTree`), complementing clang's
// -Wthread-safety analysis, clang-tidy, and the semantic whole-tree
// analyzer dta_analyze (lock-order graph + determinism flow):
//
//   unordered-output   Files that serialize ordered output (report,
//                      checkpoint, xml_schema) must not use
//                      std::unordered_map/set — iteration order would leak
//                      into the bytes. Sort first; suppress an intentional
//                      use with `// lint: ordered`.
//   wall-clock         std::chrono::system_clock, rand()/srand(), and
//                      std::random_device are nondeterministic; all
//                      randomness flows through src/common/random.* with
//                      explicit seeds. std::chrono::steady_clock is
//                      likewise banned outside src/common/clock.*: every
//                      duration must flow through dta::Clock so tests and
//                      metrics exports can inject a FakeClock and stay
//                      byte-reproducible.
//   naked-new          No naked `new`/`delete`; use std::make_unique &
//                      friends. `= delete` (deleted functions) is exempt.
//   unguarded-mutex    Every mutex member must have at least one
//                      GUARDED_BY(that mutex) user in the same file, so a
//                      lock cannot exist that the thread-safety analysis
//                      does not check.
//   lock-naming        Scoped-guard variables must end in `lock`
//                      (MutexLock lock(mu); MutexLock shard_lock(...);) so
//                      guards are greppable and never silently temporary.
//   raw-mutex          std::mutex/lock_guard/unique_lock/condition_variable
//                      are invisible to -Wthread-safety; use the annotated
//                      dta::Mutex/MutexLock/CondVar (common/mutex.h) instead.
//
// Mechanics: line-oriented over the lexically preprocessed source that
// tools/cpplex.{h,cc} produces — comments, the contents of string/char/raw
// string literals, preprocessor directives, and `#if 0` regions are all
// blanked before any rule looks at a line, so a rule keyword in a doc
// comment, a raw string, or preprocessor-dead code can never fire. Each
// rule is individually suppressible at a site with
// `// lint: <rule>[, <rule>...]` on the offending line or the line above,
// and disableable globally with --disable=<rule>,<rule>.
//
// Fixture self-test: with --check-expectations, findings are compared
// against `// expect: <rule>[, <rule>...]` markers in the linted files and
// the run fails on any difference in either direction. tests/lint_fixtures/
// exercises every rule's fire, suppress, and clean cases this way (ctest
// `DtaLintFixtures`), including the lexer regression fixtures (raw strings,
// digit separators, `#if 0`).
//
// Usage:
//   dta_lint [--root=DIR] [--disable=r1,r2] [--exclude=p1,p2]
//            [--check-expectations] PATH...
// PATHs (files or directories, *.h/*.cc/*.cpp) are resolved against --root.
// --exclude drops files whose root-relative path starts with a listed
// prefix — how the tree scan covers tests/ while skipping the deliberately
// rule-violating tests/lint_fixtures/.
// Exit codes: 0 clean, 1 findings or expectation mismatch, 2 usage error.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "cpplex.h"

namespace {

namespace fs = std::filesystem;

using dta::lex::Finding;
using dta::lex::SourceLine;

const std::vector<std::string> kAllRules = {
    "unordered-output", "wall-clock",  "naked-new",
    "unguarded-mutex",  "lock-naming", "raw-mutex",
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True if `word` occurs in `code` with non-identifier characters (or the
// line boundary) on both sides.
bool ContainsWord(const std::string& code, const std::string& word) {
  size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

// Finds `word` as an identifier immediately followed (after whitespace) by
// '(' — i.e. a call like rand().
bool ContainsCall(const std::string& code, const std::string& word) {
  size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    size_t end = pos + word.size();
    if (left_ok && (end >= code.size() || !IsIdentChar(code[end]))) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end])) != 0) {
        ++end;
      }
      if (end < code.size() && code[end] == '(') return true;
    }
    pos += 1;
  }
  return false;
}

// The alias "ordered" names the unordered-output rule in markers (matches
// the suppression comment the DESIGN doc prescribes for intentional
// sorted-elsewhere uses).
std::set<std::string> ResolveAliases(std::set<std::string> rules) {
  if (rules.erase("ordered") > 0) rules.insert("unordered-output");
  return rules;
}

// ---- Rules ---------------------------------------------------------------

// Basename-sensitive activation for the ordered-output rule: these files
// turn internal state into user- or resume-visible bytes.
bool IsOrderedOutputFile(const std::string& rel_path) {
  const std::string base = fs::path(rel_path).filename().string();
  return base.find("report") != std::string::npos ||
         base.find("checkpoint") != std::string::npos ||
         base.find("xml_schema") != std::string::npos;
}

bool IsRandomInfraFile(const std::string& rel_path) {
  const std::string base = fs::path(rel_path).filename().string();
  return base == "random.h" || base == "random.cc";
}

// The one place allowed to read std::chrono::steady_clock: the dta::Clock
// implementation everything else injects or calls through.
bool IsClockInfraFile(const std::string& rel_path) {
  const std::string base = fs::path(rel_path).filename().string();
  return base == "clock.h" || base == "clock.cc";
}

bool IsMutexInfraFile(const std::string& rel_path) {
  return fs::path(rel_path).filename().string() == "mutex.h";
}

void LintFile(const std::string& rel_path, const std::vector<std::string>& raw,
              const std::set<std::string>& disabled,
              std::vector<Finding>* findings,
              std::vector<Finding>* expectations) {
  std::vector<SourceLine> lines = dta::lex::PreprocessSource(raw);
  for (SourceLine& line : lines) {
    line.suppressed = ResolveAliases(std::move(line.suppressed));
    line.expected = ResolveAliases(std::move(line.expected));
  }

  // Whole-file text (code only) for the unguarded-mutex user search.
  std::string all_code;
  for (const SourceLine& line : lines) {
    all_code += line.code;
    all_code += '\n';
  }

  auto suppressed_at = [&lines](size_t idx, const std::string& rule) {
    if (lines[idx].suppressed.count(rule) > 0) return true;
    return idx > 0 && lines[idx - 1].suppressed.count(rule) > 0;
  };
  auto emit = [&](size_t idx, const std::string& rule,
                  const std::string& message) {
    if (disabled.count(rule) > 0) return;
    if (suppressed_at(idx, rule)) return;
    findings->push_back(Finding{rel_path, idx + 1, rule, message});
  };

  const bool ordered_output = IsOrderedOutputFile(rel_path);
  const bool random_infra = IsRandomInfraFile(rel_path);
  const bool clock_infra = IsClockInfraFile(rel_path);
  const bool mutex_infra = IsMutexInfraFile(rel_path);

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (expectations != nullptr) {
      for (const std::string& rule : lines[i].expected) {
        expectations->push_back(Finding{rel_path, i + 1, rule, ""});
      }
    }

    // unordered-output also covers the include itself — an ordered-output
    // file should not even pull the headers in.
    if (ordered_output &&
        (lines[i].directive.find("unordered_map") != std::string::npos ||
         lines[i].directive.find("unordered_set") != std::string::npos)) {
      emit(i, "unordered-output",
           "unordered container header included in an ordered-output file "
           "(suppress with 'lint: ordered')");
    }
    if (code.empty()) continue;

    // unordered-output
    if (ordered_output && (code.find("unordered_map") != std::string::npos ||
                           code.find("unordered_set") != std::string::npos)) {
      emit(i, "unordered-output",
           "unordered container in an ordered-output file; iteration order "
           "leaks into serialized bytes — sort first (suppress with "
           "'lint: ordered')");
    }

    // wall-clock
    if (!random_infra) {
      if (code.find("system_clock") != std::string::npos) {
        emit(i, "wall-clock",
             "std::chrono::system_clock is nondeterministic; use "
             "steady_clock for durations or seeded dta::Random");
      }
      if (code.find("random_device") != std::string::npos) {
        emit(i, "wall-clock",
             "std::random_device is nondeterministic; seed dta::Random "
             "explicitly");
      }
      if (ContainsCall(code, "rand") || ContainsCall(code, "srand")) {
        emit(i, "wall-clock",
             "rand()/srand() draw from hidden global state; use seeded "
             "dta::Random");
      }
    }
    if (!clock_infra && code.find("steady_clock") != std::string::npos) {
      emit(i, "wall-clock",
           "std::chrono::steady_clock read outside common/clock; time code "
           "through dta::Clock (MonotonicNowMs or an injected FakeClock) so "
           "tests and metrics exports stay byte-reproducible");
    }

    // naked-new
    if (ContainsWord(code, "new")) {
      emit(i, "naked-new",
           "naked 'new'; use std::make_unique/std::make_shared or a "
           "container");
    }
    if (ContainsWord(code, "delete")) {
      // `= delete` (deleted special member) is not a deallocation.
      size_t pos = code.find("delete");
      size_t before = code.find_last_not_of(" \t", pos == 0 ? 0 : pos - 1);
      const bool deleted_fn =
          pos > 0 && before != std::string::npos && code[before] == '=';
      if (!deleted_fn) {
        emit(i, "naked-new",
             "naked 'delete'; owning pointers must be std::unique_ptr/"
             "std::shared_ptr");
      }
    }

    // unguarded-mutex: a mutex member declaration must have a GUARDED_BY
    // user in the same file.
    {
      size_t p = 0;
      while (p < code.size() &&
             std::isspace(static_cast<unsigned char>(code[p])) != 0) {
        ++p;
      }
      std::string rest = code.substr(p);
      if (rest.rfind("mutable ", 0) == 0) rest = rest.substr(8);
      size_t after_type = std::string::npos;
      for (const char* type : {"std::mutex ", "Mutex "}) {
        if (rest.rfind(type, 0) == 0) after_type = std::string(type).size();
      }
      if (after_type != std::string::npos) {
        size_t q = after_type;
        while (q < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[q])) != 0) {
          ++q;
        }
        size_t name_start = q;
        while (q < rest.size() && IsIdentChar(rest[q])) ++q;
        std::string name = rest.substr(name_start, q - name_start);
        while (q < rest.size() &&
               std::isspace(static_cast<unsigned char>(rest[q])) != 0) {
          ++q;
        }
        if (!name.empty() && q < rest.size() && rest[q] == ';' &&
            all_code.find("GUARDED_BY(" + name + ")") == std::string::npos) {
          emit(i, "unguarded-mutex",
               "mutex member '" + name +
                   "' has no GUARDED_BY(" + name +
                   ") user in this file; a lock nothing is annotated "
                   "against is a lock the analysis cannot check");
        }
      }
    }

    // lock-naming: guard variables must end in "lock".
    {
      static const std::vector<std::string> kGuardTypes = {
          "MutexLock", "std::lock_guard", "std::unique_lock",
          "std::scoped_lock"};
      for (const std::string& type : kGuardTypes) {
        size_t pos = 0;
        while ((pos = code.find(type, pos)) != std::string::npos) {
          const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
          size_t q = pos + type.size();
          pos += 1;
          if (!left_ok) continue;
          // Skip a template argument list, then expect: identifier '('.
          if (q < code.size() && code[q] == '<') {
            int depth = 0;
            while (q < code.size()) {
              if (code[q] == '<') ++depth;
              if (code[q] == '>' && --depth == 0) {
                ++q;
                break;
              }
              ++q;
            }
          }
          while (q < code.size() &&
                 std::isspace(static_cast<unsigned char>(code[q])) != 0) {
            ++q;
          }
          size_t name_start = q;
          while (q < code.size() && IsIdentChar(code[q])) ++q;
          std::string name = code.substr(name_start, q - name_start);
          if (name.empty() || (q < code.size() && code[q] != '(')) continue;
          const bool ends_in_lock =
              name.size() >= 4 &&
              name.compare(name.size() - 4, 4, "lock") == 0;
          if (!ends_in_lock) {
            emit(i, "lock-naming",
                 "guard variable '" + name +
                     "' must end in 'lock' (e.g. 'lock', 'shard_lock')");
          }
        }
      }
    }

    // raw-mutex
    if (!mutex_infra) {
      static const std::vector<std::string> kRawTypes = {
          "std::mutex",       "std::recursive_mutex", "std::timed_mutex",
          "std::shared_mutex", "std::condition_variable",
          "std::lock_guard",  "std::unique_lock",     "std::scoped_lock"};
      for (const std::string& type : kRawTypes) {
        if (code.find(type) != std::string::npos) {
          emit(i, "raw-mutex",
               type +
                   " is invisible to -Wthread-safety; use dta::Mutex/"
                   "MutexLock/CondVar from common/mutex.h");
          break;
        }
      }
    }
  }
}

// ---- Driver --------------------------------------------------------------

int Usage() {
  std::cerr
      << "usage: dta_lint [--root=DIR] [--disable=rule1,rule2]\n"
         "                [--exclude=path1,path2] [--check-expectations]\n"
         "                PATH...\n"
         "rules:";
  for (const std::string& r : kAllRules) std::cerr << " " << r;
  std::cerr << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::set<std::string> disabled;
  std::vector<std::string> excluded;
  bool check_expectations = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--exclude=", 0) == 0) {
      std::string list = arg.substr(10);
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) excluded.push_back(list.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg.rfind("--disable=", 0) == 0) {
      for (const std::string& r :
           ResolveAliases(dta::lex::ParseRuleList(arg.substr(10)))) {
        if (std::find(kAllRules.begin(), kAllRules.end(), r) ==
            kAllRules.end()) {
          std::cerr << "dta_lint: unknown rule '" << r << "'\n";
          return Usage();
        }
        disabled.insert(r);
      }
    } else if (arg == "--check-expectations") {
      check_expectations = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dta_lint: unknown flag '" << arg << "'\n";
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();

  std::set<fs::path> files;
  std::string error;
  if (!dta::lex::CollectFiles(root, inputs, excluded, &files, &error)) {
    std::cerr << "dta_lint: " << error << "\n";
    return 2;
  }

  std::vector<Finding> findings;
  std::vector<Finding> expectations;
  for (const fs::path& file : files) {
    std::vector<std::string> raw;
    if (!dta::lex::ReadLines(file, &raw)) {
      std::cerr << "dta_lint: cannot read " << file << "\n";
      return 2;
    }
    LintFile(dta::lex::RelPath(file, root), raw, disabled, &findings,
             check_expectations ? &expectations : nullptr);
  }

  if (check_expectations) {
    const size_t mismatches =
        dta::lex::DiffExpectations(&findings, &expectations, std::cout);
    if (mismatches > 0) return 1;
    std::cout << "dta_lint: expectations match (" << expectations.size()
              << " findings across " << files.size() << " files)\n";
    return 0;
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cout << "dta_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  return 0;
}
