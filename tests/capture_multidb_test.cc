// Tests for workload capture (the profiler analog, §2.1) and multi-database
// tuning (§2.1: "ability to tune multiple databases simultaneously").

#include <gtest/gtest.h>

#include "common/strings.h"
#include "dta/tuning_session.h"
#include "server/server.h"
#include "sql/parser.h"
#include "storage/datagen.h"

namespace dta {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

std::unique_ptr<server::Server> TwoDatabaseServer() {
  auto s = std::make_unique<server::Server>("prod",
                                            optimizer::HardwareParams());
  for (const char* db_name : {"sales", "hr"}) {
    TableSchema t(StrFormat("%s_main", db_name),
                  {{"id", ColumnType::kInt, 8},
                   {"grp", ColumnType::kInt, 8},
                   {"v", ColumnType::kDouble, 8}});
    t.set_row_count(20000);
    t.SetPrimaryKey({"id"});
    catalog::Database db(db_name);
    EXPECT_TRUE(db.AddTable(t).ok());
    EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());
    Random rng{static_cast<uint64_t>(db_name[0])};
    storage::TableGenSpec spec;
    spec.schema = t;
    spec.column_specs = {storage::ColumnSpec::Sequential(),
                         storage::ColumnSpec::UniformInt(1, 50),
                         storage::ColumnSpec::UniformReal(0, 100)};
    spec.rows = 20000;
    auto data = storage::GenerateTable(spec, &rng);
    EXPECT_TRUE(data.ok());
    EXPECT_TRUE(s->AttachTableData(db_name, std::move(data).value()).ok());
  }
  return s;
}

TEST(WorkloadCaptureTest, CapturesExecutedStatements) {
  auto s = TwoDatabaseServer();
  s->StartWorkloadCapture();
  EXPECT_TRUE(s->capturing());
  for (int i = 0; i < 3; ++i) {
    auto q = sql::ParseStatement(
        StrFormat("SELECT v FROM sales_main WHERE grp = %d", i + 1));
    ASSERT_TRUE(s->ExecuteSelect(q->select()).ok());
  }
  // DML goes through the cost-only entry point and is captured too.
  auto upd = sql::ParseStatement("UPDATE hr_main SET v = 1 WHERE id = 7");
  ASSERT_TRUE(s->ExecuteStatement(*upd).ok());

  workload::Workload w = s->StopWorkloadCapture();
  EXPECT_FALSE(s->capturing());
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.DistinctTemplates(), 2u);
  EXPECT_NEAR(w.UpdateFraction(), 0.25, 1e-9);
}

TEST(WorkloadCaptureTest, CaptureIsOffByDefaultAndResets) {
  auto s = TwoDatabaseServer();
  auto q = sql::ParseStatement("SELECT v FROM sales_main WHERE grp = 1");
  ASSERT_TRUE(s->ExecuteSelect(q->select()).ok());
  s->StartWorkloadCapture();
  workload::Workload empty = s->StopWorkloadCapture();
  EXPECT_TRUE(empty.empty());  // pre-capture statements are not included
}

TEST(WorkloadCaptureTest, CapturedWorkloadIsTunable) {
  auto s = TwoDatabaseServer();
  s->StartWorkloadCapture();
  for (int i = 0; i < 5; ++i) {
    auto q = sql::ParseStatement(StrFormat(
        "SELECT grp, SUM(v) FROM sales_main WHERE grp = %d GROUP BY grp",
        i * 7 + 1));
    ASSERT_TRUE(s->ExecuteSelect(q->select()).ok());
  }
  workload::Workload w = s->StopWorkloadCapture();
  tuner::TuningSession session(s.get(), tuner::TuningOptions());
  auto r = session.Tune(w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->ImprovementPercent(), 0);
}

TEST(MultiDatabaseTest, TunesStatementsAcrossDatabases) {
  auto s = TwoDatabaseServer();
  auto w = workload::Workload::FromScript(
      "SELECT v FROM sales.sales_main WHERE grp = 3;"
      "SELECT v FROM hr.hr_main WHERE grp = 9;"
      "SELECT grp, COUNT(*) FROM hr.hr_main GROUP BY grp;");
  ASSERT_TRUE(w.ok());
  tuner::TuningSession session(s.get(), tuner::TuningOptions());
  auto r = session.Tune(*w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Recommendations land in both databases.
  bool sales_ix = false, hr_ix = false;
  for (const auto& ix : r->recommendation.indexes()) {
    if (ix.constraint_enforcing) continue;
    if (ix.table == "sales_main") sales_ix = true;
    if (ix.table == "hr_main") hr_ix = true;
  }
  EXPECT_TRUE(sales_ix) << r->recommendation.Fingerprint();
  EXPECT_TRUE(hr_ix) << r->recommendation.Fingerprint();
}

}  // namespace
}  // namespace dta
