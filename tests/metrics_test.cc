// Unit tests for the observability primitives: MetricsRegistry (counters,
// gauges, log-scale histograms, deterministic JSON body) and Tracer
// (LIFO-checked span tree under an injected FakeClock).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace dta {
namespace {

// ------------------------------------------------------------ counters

TEST(MetricsTest, CounterAccumulatesAndHandleIsStable) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("whatif.calls");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Find-or-create returns the same object, not a fresh zeroed one.
  EXPECT_EQ(reg.GetCounter("whatif.calls"), c);
  EXPECT_EQ(reg.CounterValues().at("whatif.calls"), 42u);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("session.tuning_time_ms");
  g->Set(12.5);
  g->Set(7.25);
  EXPECT_EQ(reg.GaugeValues().at("session.tuning_time_ms"), 7.25);
}

// A metric name registers exactly one kind; re-requesting it as another
// kind is a programming error and aborts.
TEST(MetricsDeathTest, CrossKindNameCollisionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry reg;
  reg.GetCounter("dual.use");
  EXPECT_DEATH(reg.GetGauge("dual.use"), "different kind");
  EXPECT_DEATH(reg.GetHistogram("dual.use"), "different kind");
}

// ------------------------------------------------------------ histograms

TEST(MetricsTest, HistogramBucketLayout) {
  // bucket 0: v < 1 (including zero, negatives, NaN); bucket i: 2^(i-1) <=
  // v < 2^i; last bucket absorbs everything >= 2^(kBuckets-2).
  Histogram h;
  h.Observe(0.0);
  h.Observe(0.999);
  h.Observe(-5.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.bucket_count(0), 4u);

  h.Observe(1.0);     // [1, 2) -> bucket 1
  h.Observe(1.999);   // bucket 1
  h.Observe(2.0);     // [2, 4) -> bucket 2
  h.Observe(1023.0);  // [512, 1024) -> bucket 10
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(10), 1u);

  // The last finite boundary is 2^(kBuckets-2); anything at or above it,
  // including +inf, lands in the overflow bucket.
  const double last_finite = std::ldexp(1.0, Histogram::kBuckets - 2);
  h.Observe(last_finite);
  h.Observe(1e300);
  h.Observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 3u);
  // Just below the boundary stays in the last finite bucket.
  h.Observe(std::nextafter(last_finite, 0.0));
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 2), 1u);

  EXPECT_EQ(h.count(), 12u);
}

TEST(MetricsTest, HistogramBucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024.0);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 2),
            std::ldexp(1.0, Histogram::kBuckets - 2));
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperBound(Histogram::kBuckets - 1)));
}

TEST(MetricsTest, HistogramSumAccruesInMicroseconds) {
  Histogram h;
  h.Observe(1.5);
  h.Observe(1.5);
  h.Observe(0.0004);  // rounds to 0 micros at fixed point
  EXPECT_EQ(h.sum_micros(), 3000u);
  EXPECT_EQ(h.count(), 3u);
}

// The determinism contract: N threads issuing the same logical updates in
// any interleaving must leave the registry byte-identical to a serial run —
// counts are atomic integers and histogram sums accrue in integer micros.
TEST(MetricsTest, ConcurrentUpdatesMatchSerialExportByteForByte) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  const std::vector<double> kLatencies = {0.25, 1.5, 3.0, 700.0};

  MetricsRegistry serial;
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      serial.GetCounter("whatif.calls")->Increment();
      for (double v : kLatencies) {
        serial.GetHistogram("whatif.latency_ms")->Observe(v);
      }
    }
  }
  serial.GetGauge("session.tuning_time_ms")->Set(0.0);

  MetricsRegistry hammered;
  // Resolve handles up front on some threads, lazily on others, so the
  // find-or-create path races too.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hammered, &kLatencies, t] {
      Counter* calls =
          t % 2 == 0 ? hammered.GetCounter("whatif.calls") : nullptr;
      for (int r = 0; r < kRounds; ++r) {
        (calls != nullptr ? calls : hammered.GetCounter("whatif.calls"))
            ->Increment();
        Histogram* lat = hammered.GetHistogram("whatif.latency_ms");
        for (double v : kLatencies) lat->Observe(v);
      }
    });
  }
  for (auto& t : threads) t.join();
  hammered.GetGauge("session.tuning_time_ms")->Set(0.0);

  std::string serial_json;
  serial.AppendJsonBody(&serial_json, "  ");
  std::string hammered_json;
  hammered.AppendJsonBody(&hammered_json, "  ");
  EXPECT_EQ(serial_json, hammered_json);
  EXPECT_EQ(hammered.CounterValues().at("whatif.calls"),
            static_cast<uint64_t>(kThreads) * kRounds);
}

TEST(MetricsTest, JsonBodySortsNamesAndElidesEmptyBuckets) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Increment(2);
  reg.GetCounter("alpha")->Increment();
  Histogram* h = reg.GetHistogram("lat");
  h->Observe(0.5);
  h->Observe(1e300);

  std::string out;
  reg.AppendJsonBody(&out, "");
  // Sorted counters.
  EXPECT_LT(out.find("\"alpha\": 1"), out.find("\"zeta\": 2"));
  // Sparse buckets: exactly the sub-millisecond bucket and the +inf
  // overflow bucket appear.
  EXPECT_NE(out.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(out.find("{\"le\": \"+inf\", \"count\": 1}"), std::string::npos);
  EXPECT_EQ(out.find("\"le\": 2"), std::string::npos);
}

TEST(MetricsTest, JsonEscapeHandlesSpecialsAndControlChars) {
  EXPECT_EQ(JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ------------------------------------------------------------ tracer

TEST(TracerTest, SpanTreeTracksNestingAndFakeClockDurations) {
  FakeClock clock(100.0);
  Tracer tracer(&clock);
  {
    TraceScope tune(&tracer, "tune");
    clock.AdvanceMs(5);
    {
      TraceScope phase(&tracer, "current_cost");
      clock.AdvanceMs(10);
    }
    {
      TraceScope phase(&tracer, "enumeration");
      clock.AdvanceMs(20);
      {
        TraceScope ckpt(&tracer, "checkpoint");
        clock.AdvanceMs(2);
      }
    }
  }

  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Pre-order: tune > current_cost, enumeration > checkpoint; start times
  // relative to the first span.
  EXPECT_EQ(spans[0].name, "tune");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].start_ms, 0.0);
  EXPECT_EQ(spans[0].duration_ms, 37.0);
  EXPECT_EQ(spans[1].name, "current_cost");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[1].start_ms, 5.0);
  EXPECT_EQ(spans[1].duration_ms, 10.0);
  EXPECT_EQ(spans[2].name, "enumeration");
  EXPECT_EQ(spans[2].duration_ms, 22.0);
  EXPECT_EQ(spans[3].name, "checkpoint");
  EXPECT_EQ(spans[3].depth, 2);
  EXPECT_EQ(spans[3].start_ms, 35.0);
  EXPECT_EQ(spans[3].duration_ms, 2.0);
}

TEST(TracerTest, TotalDurationSumsOnlyClosedSpansOfThatName) {
  FakeClock clock;
  Tracer tracer(&clock);
  for (double advance : {3.0, 4.0}) {
    TraceScope s(&tracer, "checkpoint");
    clock.AdvanceMs(advance);
  }
  const int open = tracer.BeginSpan("checkpoint");
  clock.AdvanceMs(100);
  EXPECT_EQ(tracer.TotalDurationMs("checkpoint"), 7.0);
  EXPECT_EQ(tracer.TotalDurationMs("no_such_phase"), 0.0);
  // Still-open spans surface as negative durations in the flattened view.
  EXPECT_LT(tracer.Spans().back().duration_ms, 0.0);
  tracer.EndSpan(open);
  EXPECT_EQ(tracer.TotalDurationMs("checkpoint"), 107.0);
}

TEST(TracerDeathTest, NonLifoEndSpanAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FakeClock clock;
  Tracer tracer(&clock);
  const int outer = tracer.BeginSpan("outer");
  tracer.BeginSpan("inner");
  EXPECT_DEATH(tracer.EndSpan(outer), "LIFO");
}

TEST(TracerTest, NullTracerScopesAreNoOps) {
  // The whole layer is opt-in; phase code never checks for a tracer.
  TraceScope scope(nullptr, "tune");
}

// ------------------------------------------------------------ document

TEST(ObservabilityJsonTest, EmptyDocumentIsStable) {
  MetricsRegistry reg;
  EXPECT_EQ(ObservabilityJson(reg, nullptr),
            "{\n"
            "  \"schema\": \"dta-observability-v1\",\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {},\n"
            "  \"spans\": []\n"
            "}\n");
}

TEST(ObservabilityJsonTest, FakeClockDocumentIsByteReproducible) {
  auto build = [] {
    MetricsRegistry reg;
    FakeClock clock(50.0);
    Tracer tracer(&clock);
    {
      TraceScope tune(&tracer, "tune");
      clock.AdvanceMs(8);
      {
        TraceScope phase(&tracer, "merging");
        clock.AdvanceMs(4);
        reg.GetCounter("whatif.calls")->Increment(17);
        reg.GetHistogram("whatif.latency_ms")->Observe(1.25);
      }
    }
    return ObservabilityJson(reg, &tracer);
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_NE(first.find("\"schema\": \"dta-observability-v1\""),
            std::string::npos);
  EXPECT_NE(first.find("\"name\": \"merging\", \"start_ms\": 8.000, "
                       "\"duration_ms\": 4.000"),
            std::string::npos);
}

}  // namespace
}  // namespace dta
