// Derived what-if costing tests: decomposition shape (per-table combination
// atoms, DML exclusion, the bounded singleton form), the combine rule against
// brute-force what-if pricing, fallback when an atom degraded, checkpoint
// round-tripping of memoized atoms, and session-level invariance of the
// recommendation and of the derived counters across threads, shards, and
// exact mode.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dta/checkpoint.h"
#include "dta/cost_service.h"
#include "dta/derived_cost.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::PartitionScheme;
using catalog::TableSchema;

// Same production fixture as dta_session_test: two joinable tables with
// real data and a constraint-enforcing PK index.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SelectWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

workload::Workload MixedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

IndexDef Ix(const std::string& table, std::vector<std::string> keys,
            std::vector<std::string> included = {}) {
  return IndexDef{.table = table,
                  .key_columns = std::move(keys),
                  .included_columns = std::move(included)};
}

// The candidate index pool the brute-force tests enumerate subsets of:
// two orders indexes and two items indexes.
std::vector<IndexDef> TestPool() {
  return {Ix("orders", {"o_id"}, {"o_price"}),
          Ix("orders", {"o_date"}, {"o_cust"}),
          Ix("items", {"i_part"}, {"i_qty"}),
          Ix("items", {"i_oid"}, {"i_qty"})};
}

// ---------------------------------------------------------- decomposition

TEST(DerivedCostDecompositionTest, SingletonConfigurationsAreTrivial) {
  Configuration config;
  ASSERT_TRUE(config.AddIndex(Ix("orders", {"o_cust"})).ok());
  RelevantSet relevant = CollectRelevant({"orders"}, config);
  Decomposition d = DecomposeConfiguration(sql::StatementKind::kSelect,
                                           relevant, 64);
  EXPECT_EQ(d.outcome, Decomposition::Outcome::kTrivial);

  // The empty configuration is trivially its own atom too.
  Decomposition empty = DecomposeConfiguration(
      sql::StatementKind::kSelect, CollectRelevant({"orders"}, Configuration()),
      64);
  EXPECT_EQ(empty.outcome, Decomposition::Outcome::kTrivial);
}

TEST(DerivedCostDecompositionTest, EnumeratesOneIndexPerTableCombinations) {
  // Two variable orders indexes, one variable items index, plus context
  // structures: a constraint-enforcing index and table partitioning.
  Configuration config;
  ASSERT_TRUE(config.AddIndex(Ix("orders", {"o_cust"})).ok());
  ASSERT_TRUE(config.AddIndex(Ix("orders", {"o_date"})).ok());
  ASSERT_TRUE(config.AddIndex(Ix("items", {"i_part"})).ok());
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_id"},
                                     .constraint_enforcing = true})
                  .ok());
  PartitionScheme scheme;
  scheme.column = "o_date";
  scheme.boundaries = {sql::Value::String("1995-01-01")};
  config.SetTablePartitioning("orders", scheme);

  RelevantSet relevant = CollectRelevant({"orders", "items"}, config);
  Decomposition d = DecomposeConfiguration(sql::StatementKind::kSelect,
                                           relevant, 64);
  ASSERT_EQ(d.outcome, Decomposition::Outcome::kDerivable);
  // (2 + 1) orders choices x (1 + 1) items choices.
  ASSERT_EQ(d.atoms.size(), 6u);
  for (const auto& atom : d.atoms) {
    // Every atom carries the full context: the constraint index and the
    // partitioning, plus at most one variable index per table.
    EXPECT_TRUE(atom.table_partitioning().count("orders"));
    size_t constraint = 0, orders_vars = 0, items_vars = 0;
    for (const auto& ix : atom.indexes()) {
      if (ix.constraint_enforcing) {
        ++constraint;
      } else if (ix.table == "orders") {
        ++orders_vars;
      } else {
        ++items_vars;
      }
    }
    EXPECT_EQ(constraint, 1u);
    EXPECT_LE(orders_vars, 1u);
    EXPECT_LE(items_vars, 1u);
  }
  // The first atom is the bare context.
  EXPECT_EQ(d.atoms[0].indexes().size(), 1u);
  EXPECT_TRUE(d.atoms[0].indexes()[0].constraint_enforcing);
}

TEST(DerivedCostDecompositionTest, DmlWithVariableIndexesIsUnsupported) {
  Configuration config;
  ASSERT_TRUE(config.AddIndex(Ix("items", {"i_part"})).ok());
  ASSERT_TRUE(config.AddIndex(Ix("items", {"i_oid"})).ok());
  RelevantSet relevant = CollectRelevant({"items"}, config);
  Decomposition d = DecomposeConfiguration(sql::StatementKind::kUpdate,
                                           relevant, 64);
  EXPECT_EQ(d.outcome, Decomposition::Outcome::kUnsupportedStatement);
  EXPECT_TRUE(d.atoms.empty());
}

TEST(DerivedCostDecompositionTest, AtomBudgetYieldsBoundedSingletonForm) {
  Configuration config;
  ASSERT_TRUE(config.AddIndex(Ix("orders", {"o_cust"})).ok());
  ASSERT_TRUE(config.AddIndex(Ix("orders", {"o_date"})).ok());
  ASSERT_TRUE(config.AddIndex(Ix("items", {"i_part"})).ok());
  ASSERT_TRUE(config.AddIndex(Ix("items", {"i_oid"})).ok());
  RelevantSet relevant = CollectRelevant({"orders", "items"}, config);

  // 3 x 3 = 9 combination atoms exceed a budget of 8: the decomposition
  // degrades to the singleton form — context plus one atom per variable.
  Decomposition d = DecomposeConfiguration(sql::StatementKind::kSelect,
                                           relevant, 8);
  ASSERT_EQ(d.outcome, Decomposition::Outcome::kTooManyAtoms);
  ASSERT_EQ(d.atoms.size(), 5u);  // context + 4 singletons
  ASSERT_EQ(d.variable_group_atoms.size(), 2u);  // one group per table
  for (const auto& group : d.variable_group_atoms) {
    EXPECT_EQ(group.size(), 2u);
  }
}

TEST(DerivedCostCombineTest, CombineIsMinOverAtoms) {
  EXPECT_EQ(CombineAtomCosts({4.0, 2.5, 9.0}), 2.5);
  EXPECT_EQ(CombineAtomCosts({7.0}), 7.0);
}

// ---------------------------------------------------- brute-force equality

// Prices every subset of the 4-index pool (and a partitioning variant) with
// a derived-enabled service and a plain one: the derived answers must equal
// the real what-if costs exactly, while making strictly fewer real calls.
TEST(DerivedCostServiceTest, DerivedCostsMatchBruteForceOnSelects) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();

  CostService::Config derived_config;
  derived_config.derived.enabled = true;
  CostService derived(prod.get(), nullptr, &w, derived_config);
  CostService plain(prod.get(), nullptr, &w);

  const std::vector<IndexDef> pool = TestPool();
  PartitionScheme scheme;
  scheme.column = "o_date";
  scheme.boundaries = {sql::Value::String("1995-01-01")};

  for (unsigned mask = 0; mask < (1u << pool.size()); ++mask) {
    for (bool partitioned : {false, true}) {
      Configuration config;
      for (size_t b = 0; b < pool.size(); ++b) {
        if (mask & (1u << b)) ASSERT_TRUE(config.AddIndex(pool[b]).ok());
      }
      if (partitioned) config.SetTablePartitioning("orders", scheme);
      for (size_t i = 0; i < w.size(); ++i) {
        auto got = derived.StatementCost(i, config);
        auto want = plain.StatementCost(i, config);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        EXPECT_EQ(*got, *want)
            << "statement " << i << " mask " << mask
            << (partitioned ? " partitioned" : "");
      }
    }
  }
  EXPECT_GT(derived.derived_answers(), 0u);
  EXPECT_EQ(derived.whatif_calls_saved(), derived.derived_answers());
  EXPECT_LT(derived.whatif_calls(), plain.whatif_calls());
}

TEST(DerivedCostServiceTest, DmlFallsBackToRealCalls) {
  auto prod = MakeProduction();
  workload::Workload w = MixedWorkload();

  CostService::Config config;
  config.derived.enabled = true;
  CostService derived(prod.get(), nullptr, &w, config);
  CostService plain(prod.get(), nullptr, &w);

  Configuration two_indexes;
  ASSERT_TRUE(two_indexes.AddIndex(Ix("items", {"i_part"})).ok());
  ASSERT_TRUE(two_indexes.AddIndex(Ix("items", {"i_oid"})).ok());

  const size_t update_stmt = 2;
  auto got = derived.StatementCost(update_stmt, two_indexes);
  auto want = plain.StatementCost(update_stmt, two_indexes);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
  EXPECT_EQ(derived.derived_answers(), 0u);
  EXPECT_EQ(derived.derivation_fallbacks(), 1u);
}

// A backend that fails permanently whenever the priced configuration
// matches a predicate — lets a test degrade exactly one atom.
class SelectiveFaultBackend : public CostBackend {
 public:
  using Predicate = std::function<bool(const catalog::Configuration&)>;
  SelectiveFaultBackend(server::Server* server, Predicate fail_when)
      : server_(server), fail_when_(std::move(fail_when)) {}

  Result<server::Server::WhatIfResult> WhatIfCost(
      const WhatIfCall& call) override {
    if (fail_when_(*call.config)) {
      return Status::Internal("injected permanent fault");
    }
    return server_->WhatIfCost(*call.stmt, *call.config,
                               call.simulate_hardware, call.call_key);
  }

  server::Server* primary() const override { return server_; }

 private:
  server::Server* server_;
  Predicate fail_when_;
};

// One atom degrades (its pricing permanently fails and falls back to the
// heuristic estimate): the derivation must not combine the poisoned value —
// it falls back to a real what-if call for the full configuration.
TEST(DerivedCostServiceTest, DegradedAtomForcesFallback) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();

  // Fail exactly the atom {o_cust index alone}: one variable orders index
  // and no items index. The full two-index configuration and every other
  // atom price normally.
  auto only_ocust = [](const catalog::Configuration& config) {
    bool has_ocust = false;
    size_t variables = 0;
    for (const auto& ix : config.indexes()) {
      if (ix.constraint_enforcing) continue;
      ++variables;
      if (!ix.key_columns.empty() && ix.key_columns[0] == "o_cust") {
        has_ocust = true;
      }
    }
    return has_ocust && variables == 1;
  };
  SelectiveFaultBackend backend(prod.get(), only_ocust);

  CostService::Config config;
  config.derived.enabled = true;
  config.retry.max_attempts = 1;
  config.retry.initial_backoff_ms = 0;
  CostService derived(&backend, nullptr, &w, config);
  CostService plain(prod.get(), nullptr, &w);

  Configuration two;
  ASSERT_TRUE(two.AddIndex(Ix("orders", {"o_cust"})).ok());
  ASSERT_TRUE(two.AddIndex(Ix("orders", {"o_date"})).ok());

  auto got = derived.StatementCost(0, two);
  auto want = plain.StatementCost(0, two);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  // The full configuration does not match the predicate, so the fallback
  // call returns the true cost even though one atom degraded.
  EXPECT_EQ(*got, *want);
  EXPECT_EQ(derived.derived_answers(), 0u);
  EXPECT_EQ(derived.derivation_fallbacks(), 1u);
  EXPECT_GT(derived.degraded_calls(), 0u);
}

// ------------------------------------------------------------- checkpoints

TEST(DerivedCostCheckpointTest, MemoizedAtomsRoundTripThroughCheckpoint) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();

  CostService::Config config;
  config.derived.enabled = true;
  CostService first(prod.get(), nullptr, &w, config);

  Configuration two;
  ASSERT_TRUE(two.AddIndex(Ix("orders", {"o_id"}, {"o_price"})).ok());
  ASSERT_TRUE(two.AddIndex(Ix("orders", {"o_date"}, {"o_cust"})).ok());
  for (size_t i = 0; i < w.size(); ++i) {
    ASSERT_TRUE(first.StatementCost(i, two).ok());
  }
  ASSERT_GT(first.derived_answers(), 0u);

  // The export carries the derived flag; the XML round trip preserves it.
  SessionCheckpoint ckpt;
  ckpt.cache = first.ExportCache();
  ckpt.degraded_statements = {1, 3};
  bool any_derived = false;
  for (const auto& e : ckpt.cache) any_derived |= e.derived;
  EXPECT_TRUE(any_derived);

  auto parsed = CheckpointFromXml(CheckpointToXml(ckpt), prod->catalog());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->cache.size(), ckpt.cache.size());
  for (size_t i = 0; i < ckpt.cache.size(); ++i) {
    EXPECT_EQ(parsed->cache[i].statement, ckpt.cache[i].statement);
    EXPECT_EQ(parsed->cache[i].fingerprint, ckpt.cache[i].fingerprint);
    EXPECT_EQ(parsed->cache[i].cost, ckpt.cache[i].cost);
    EXPECT_EQ(parsed->cache[i].degraded, ckpt.cache[i].degraded);
    EXPECT_EQ(parsed->cache[i].derived, ckpt.cache[i].derived);
  }
  EXPECT_EQ(parsed->degraded_statements, ckpt.degraded_statements);

  // A fresh service resuming from the parsed cache answers everything from
  // memoized entries — atoms included — without a single real call.
  CostService second(prod.get(), nullptr, &w, config);
  second.ImportCache(parsed->cache);
  for (size_t i = 0; i < w.size(); ++i) {
    auto resumed = second.StatementCost(i, two);
    auto original = first.StatementCost(i, two);
    ASSERT_TRUE(resumed.ok());
    ASSERT_TRUE(original.ok());
    EXPECT_EQ(*resumed, *original);
  }
  EXPECT_EQ(second.whatif_calls(), 0u);
  EXPECT_EQ(second.derived_answers(), 0u);
}

// ------------------------------------------------------------ session level

std::string RecommendationXml(const TuningResult& r) {
  return ConfigurationToXml(r.recommendation)->ToString();
}

Result<TuningResult> TuneSeeded(TuningOptions opts) {
  auto prod = MakeProduction();
  TuningSession session(prod.get(), opts);
  auto w = workload::Workload::FromScript(
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9");
  EXPECT_TRUE(w.ok());
  return session.Tune(*w);
}

// Derivation must not change the recommendation, and its counters must be
// invariant across thread and shard topologies (they are pure functions of
// the lookup set, like whatif_calls).
TEST(DerivedCostSessionTest, RecommendationAndCountersInvariant) {
  TuningOptions base;

  TuningOptions underived = base;
  underived.derived_costing = false;
  auto want = TuneSeeded(underived);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_EQ(want->derived_answers, 0u);
  EXPECT_EQ(want->whatif_calls_saved, 0u);

  auto serial = TuneSeeded(base);
  ASSERT_TRUE(serial.ok());
  EXPECT_GT(serial->derived_answers, 0u);
  EXPECT_GT(serial->whatif_calls_saved, 0u);
  EXPECT_LT(serial->whatif_calls, want->whatif_calls);
  EXPECT_EQ(RecommendationXml(*serial), RecommendationXml(*want));
  EXPECT_EQ(serial->recommended_cost, want->recommended_cost);

  for (auto [threads, shards] : {std::pair{4, 1}, {2, 2}}) {
    TuningOptions opts = base;
    opts.num_threads = threads;
    opts.shards = shards;
    auto got = TuneSeeded(opts);
    ASSERT_TRUE(got.ok()) << threads << "x" << shards;
    EXPECT_EQ(RecommendationXml(*got), RecommendationXml(*serial))
        << threads << "x" << shards;
    EXPECT_EQ(got->derived_answers, serial->derived_answers)
        << threads << "x" << shards;
    EXPECT_EQ(got->derivation_fallbacks, serial->derivation_fallbacks)
        << threads << "x" << shards;
    EXPECT_EQ(got->whatif_calls_saved, serial->whatif_calls_saved)
        << threads << "x" << shards;
    EXPECT_EQ(got->whatif_calls, serial->whatif_calls)
        << threads << "x" << shards;
  }
}

// Exact mode prices every derivable miss both ways: nothing is saved, the
// recommendation is identical, and on this workload the combine rule is
// exact — no derivation error exceeds the (zero) bound.
TEST(DerivedCostSessionTest, ExactModeVerifiesDerivationsWithoutSavings) {
  TuningOptions exact;
  exact.exact_costing = true;
  auto got = TuneSeeded(exact);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(got->derived_answers, 0u);
  EXPECT_EQ(got->whatif_calls_saved, 0u);
  EXPECT_EQ(got->derivation_errors_exceeded, 0u);

  auto plain = TuneSeeded(TuningOptions());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(RecommendationXml(*got), RecommendationXml(*plain));
  EXPECT_EQ(got->derived_answers, plain->derived_answers);
}

}  // namespace
}  // namespace dta::tuner
