// End-to-end observability: a tuned session exports a deterministic
// metrics/span document. The golden property is byte-identity — the same
// workload under a FakeClock must produce the identical ObservabilityJson
// at 1 and at 8 threads, which pins down both the thread-invariance of
// every registered metric (whatif.calls dedup, integer-accrued histograms)
// and the session-thread-only span tree.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "dta/cost_service.h"
#include "dta/tenant_driver.h"
#include "dta/tuning_session.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// The two-table shop fixture shared with the parallel-tuning tests.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SeedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "INSERT INTO orders (o_id, o_cust, o_date, o_price) VALUES "
      "(31000, 5, '1996-01-01', 10.5);"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

struct ObservedRun {
  std::string json;
  std::vector<Tracer::SpanView> spans;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
  TuningResult result;
};

// Tunes the seed workload with full observability attached: a FakeClock
// (frozen — never advanced — so every duration is exactly 0.000), a span
// tracer, and a metrics registry, optionally with checkpointing on.
ObservedRun TuneObserved(int threads, const std::string& checkpoint_path) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.num_threads = threads;
  opts.checkpoint_path = checkpoint_path;
  TuningSession session(prod.get(), opts);

  MetricsRegistry metrics;
  FakeClock clock(1000.0);
  Tracer tracer(&clock);
  session.SetObservability({&metrics, &tracer, &clock});

  auto result = session.Tune(SeedWorkload());
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  ObservedRun run;
  run.json = ObservabilityJson(metrics, &tracer);
  run.spans = tracer.Spans();
  run.counters = metrics.CounterValues();
  run.histograms = metrics.HistogramValues();
  if (result.ok()) run.result = std::move(result).value();
  return run;
}

// ------------------------------------------------------- golden identity

TEST(ObservabilityGoldenTest, ExportIsByteIdenticalAtOneAndEightThreads) {
  const std::string dir = ::testing::TempDir();
  ObservedRun serial = TuneObserved(1, dir + "obs_golden_1.xml");
  ObservedRun parallel = TuneObserved(8, dir + "obs_golden_8.xml");

  // The whole document — counters, gauges, histogram buckets, span tree,
  // every formatted duration — byte for byte.
  EXPECT_EQ(serial.json, parallel.json);

  // And it is a real run, not a vacuous empty export.
  EXPECT_GT(serial.counters.at("whatif.calls"), 0u);
  EXPECT_GT(serial.counters.at("optimizer.statements_costed"), 0u);
  EXPECT_GT(serial.counters.at("enumeration.evaluations"), 0u);
  EXPECT_GT(serial.counters.at("checkpoint.writes"), 0u);
  EXPECT_NE(serial.json.find("\"schema\": \"dta-observability-v1\""),
            std::string::npos);
}

TEST(ObservabilityGoldenTest, RepeatedRunsAreByteIdentical) {
  ObservedRun a = TuneObserved(2, "");
  ObservedRun b = TuneObserved(2, "");
  EXPECT_EQ(a.json, b.json);
}

// ------------------------------------------------------- span coverage

TEST(ObservabilityTest, SpanTreeCoversEveryPipelinePhase) {
  const std::string dir = ::testing::TempDir();
  ObservedRun run = TuneObserved(2, dir + "obs_spans.xml");

  std::set<std::string> names;
  for (const auto& s : run.spans) names.insert(s.name);
  // The paper's pipeline: current-cost pass, then the four search phases
  // (candidate generation, selection, merging, enumeration), plus the
  // supporting stages and the interleaved checkpoint writes.
  for (const char* phase :
       {"tune", "compression", "current_cost", "column_groups",
        "candidate_generation", "candidate_selection", "merging",
        "enumeration", "report", "checkpoint"}) {
    EXPECT_EQ(names.count(phase), 1u) << "missing span: " << phase;
  }

  // "tune" is the root; the pipeline phases are its direct children; no
  // span leaks open past Tune()'s return.
  ASSERT_FALSE(run.spans.empty());
  EXPECT_EQ(run.spans[0].name, "tune");
  EXPECT_EQ(run.spans[0].depth, 0);
  for (const auto& s : run.spans) {
    EXPECT_GE(s.duration_ms, 0.0) << s.name << " left open";
    // Frozen FakeClock: every measured duration is exactly zero.
    EXPECT_EQ(s.duration_ms, 0.0) << s.name;
    if (s.name == "current_cost" || s.name == "enumeration" ||
        s.name == "merging") {
      EXPECT_EQ(s.depth, 1) << s.name;
    }
  }
}

// ------------------------------------------------------- metric semantics

TEST(ObservabilityTest, WhatIfCountersReconcileWithSessionResult) {
  ObservedRun run = TuneObserved(4, "");

  // The registry's view and TuningResult's view of the same run agree.
  EXPECT_EQ(run.counters.at("whatif.calls"), run.result.whatif_calls);
  EXPECT_EQ(run.counters.at("enumeration.evaluations"),
            run.result.enumeration_evaluations);
  EXPECT_EQ(run.counters.at("candidates.generated"),
            run.result.candidates_generated);
  // Every cache lookup is accounted exactly once: a hit, a real pricing, or
  // a miss answered by cost derivation.
  EXPECT_EQ(run.counters.at("whatif.lookups"),
            run.counters.at("whatif.cache_hits") +
                run.counters.at("whatif.calls") +
                run.counters.at("whatif.calls_saved"));
  // One latency observation per claimed miss (real pricings and derived
  // answers both); frozen clock means an all-zero latency sum in the export.
  const HistogramSnapshot& latency = run.histograms.at("whatif.latency_ms");
  EXPECT_EQ(latency.count, run.counters.at("whatif.calls") +
                               run.counters.at("whatif.derived_answers"));
  EXPECT_EQ(latency.sum_micros, 0u);
  // A fault-free run retries and degrades nothing.
  EXPECT_EQ(run.counters.at("whatif.retries"), 0u);
  EXPECT_EQ(run.counters.at("whatif.degraded_calls"), 0u);
}

// dedup_waits is scheduling-dependent (how often racing threads collide on
// a cold cache pair), so it must stay OUT of the registry — its presence
// would break the 1-vs-8-thread byte identity the golden test pins.
TEST(ObservabilityTest, SchedulingDependentQuantitiesAreNotExported) {
  ObservedRun run = TuneObserved(8, "");
  EXPECT_EQ(run.counters.count("whatif.dedup_waits"), 0u);
  EXPECT_EQ(run.json.find("dedup"), std::string::npos);
}

// --------------------------------------------------- multi-tenant export

// Runs a two-tenant fleet with a shared registry and returns the merged
// export. Each tenant profiles into a private registry merged after the
// joins under "tenant.<name>.", so the merged document inherits each
// tenant's thread-invariance.
std::string TuneTenantsObserved(int threads) {
  workload::Workload w0 = SeedWorkload();
  auto w1r = workload::Workload::FromScript(
      "SELECT i_qty FROM items WHERE i_part = 5;"
      "SELECT o_id FROM orders WHERE o_price > 500;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust");
  EXPECT_TRUE(w1r.ok()) << w1r.status().ToString();
  workload::Workload w1 = std::move(w1r).value();

  auto s0 = MakeProduction();
  auto s1 = MakeProduction();

  std::vector<TenantSpec> specs(2);
  specs[0].name = "alpha";
  specs[0].workload = &w0;
  specs[0].options.num_threads = threads;
  specs[1].name = "beta";
  specs[1].workload = &w1;
  specs[1].options.num_threads = threads;

  MetricsRegistry merged;
  FakeClock clock(1000.0);
  TenantDriverOptions options;
  options.metrics = &merged;
  options.clock = &clock;
  options.admission.total_capacity = 4;
  options.admission.per_tenant_capacity = 2;
  TenantDriver driver(options);
  auto outcomes = driver.Run(specs, {s0.get(), s1.get()});
  EXPECT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  if (outcomes.ok()) {
    for (const auto& o : *outcomes) {
      EXPECT_TRUE(o.status.ok()) << o.name << ": " << o.status.ToString();
    }
    // Namespacing: each tenant's deterministic counters appear under its
    // own prefix and reconcile with its session result.
    const auto counters = merged.CounterValues();
    EXPECT_EQ(counters.at("tenant.alpha.whatif.calls"),
              (*outcomes)[0].result.whatif_calls);
    EXPECT_EQ(counters.at("tenant.beta.whatif.calls"),
              (*outcomes)[1].result.whatif_calls);
  }
  return ObservabilityJson(merged, nullptr);
}

// The golden property, one level up: the merged --metrics-json document of
// a two-tenant fleet is byte-identical at any per-tenant thread count.
// (Admission waits and peaks are scheduling-dependent and stay out of the
// registry, same as dedup_waits.)
TEST(ObservabilityGoldenTest, MultiTenantExportIsByteIdenticalAcrossThreads) {
  const std::string serial = TuneTenantsObserved(1);
  const std::string parallel = TuneTenantsObserved(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("tenant.alpha.whatif.calls"), std::string::npos);
  EXPECT_NE(serial.find("tenant.beta.whatif.calls"), std::string::npos);
  EXPECT_EQ(serial.find("admission"), std::string::npos);
  EXPECT_EQ(serial.find("dedup"), std::string::npos);
}

// ------------------------------------------------------- concurrency (TSan)

// Hammers a metrics-attached CostService from many threads: the profiling
// hot path (counter increments, histogram observes on the shared handles)
// must be data-race-free and must not perturb the thread-invariant call
// accounting. Runs under TSan in CI.
TEST(ObservabilityStressTest, MetricsAttachedCostServiceIsRaceFree) {
  auto prod = MakeProduction();
  workload::Workload w = SeedWorkload();

  std::vector<Configuration> configs;
  configs.push_back(Configuration());
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "orders", .key_columns = {"o_id"}})
            .ok());
    configs.push_back(c);
  }
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "items", .key_columns = {"i_part"}})
            .ok());
    configs.push_back(c);
  }

  MetricsRegistry metrics;
  FakeClock clock;
  CostService::Config config;
  config.metrics = &metrics;
  config.clock = &clock;
  CostService service(prod.get(), nullptr, &w, std::move(config));

  constexpr int kThreads = 8;
  constexpr int kRounds = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t n = 0; n < w.size() * configs.size(); ++n) {
          size_t pos = (n * (t + 1) + round) % (w.size() * configs.size());
          auto r = service.StatementCost(pos % w.size(),
                                         configs[pos / w.size()]);
          if (!r.ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const auto counters = metrics.CounterValues();
  EXPECT_EQ(counters.at("whatif.calls"), service.whatif_calls());
  EXPECT_EQ(counters.at("whatif.cache_hits"), service.cache_hits());
  EXPECT_EQ(counters.at("whatif.lookups"),
            service.whatif_calls() + service.cache_hits());
  EXPECT_EQ(metrics.HistogramValues().at("whatif.latency_ms").count,
            service.whatif_calls());
}

}  // namespace
}  // namespace dta::tuner
