// Chaos tests for the sharded costing backend: kill or degrade each shard
// in turn via per-shard fault specs (node death, burst outages, random
// transients) and require graceful failover — recommendations byte-identical
// to a healthy single-server run, with no lost and no double-counted calls.
// Also covers the outage extensions of FaultSpec and ShardFaultSpec parsing.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/strings.h"
#include "dta/shard_router.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as parallel_tuning_test.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SeedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "INSERT INTO orders (o_id, o_cust, o_date, o_price) VALUES "
      "(31000, 5, '1996-01-01', 10.5);"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

std::string RecommendationXml(const TuningResult& r) {
  return ConfigurationToXml(r.recommendation)->ToString();
}

Result<TuningResult> Tune(int shards, int threads,
                          const std::string& shard_fault_spec,
                          double slow_threshold = 0) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.shards = shards;
  opts.num_threads = threads;
  opts.shard_fault_spec = shard_fault_spec;
  opts.shard_slow_threshold = slow_threshold;
  opts.retry.initial_backoff_ms = 0.01;
  opts.retry.max_backoff_ms = 0.05;
  TuningSession session(prod.get(), opts);
  return session.Tune(SeedWorkload());
}

// No lost and no double-counted calls: every logical pricing was answered
// by exactly one shard, or degraded to the heuristic.
void ExpectCallsConserved(const TuningResult& r, const std::string& label) {
  EXPECT_EQ(r.shard_successes, r.whatif_calls - r.degraded_calls) << label;
  size_t attempts = 0;
  for (size_t c : r.shard_calls) attempts += c;
  // Every attempt is accounted exactly once: it succeeded, was rescued by
  // a failover hop, or was the final failure of an exhausted call.
  EXPECT_EQ(attempts,
            r.shard_successes + r.shard_failovers + r.shard_exhausted)
      << label;
}

// --------------------------------------------------- FaultSpec extensions

TEST(FaultSpecOutageTest, DownAfterKillsTheNodePermanently) {
  auto spec = FaultSpec::Parse("down_after=3");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->Enabled());
  FaultInjector injector(*spec);
  // Ordinals 0..2 succeed, everything after is node death.
  for (uint64_t k = 1; k <= 3; ++k) {
    EXPECT_TRUE(injector.Decide(k).status.ok()) << k;
  }
  for (uint64_t k = 4; k <= 10; ++k) {
    auto outcome = injector.Decide(k);
    EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable) << k;
  }
  EXPECT_EQ(injector.outage_failures(), 7u);
}

TEST(FaultSpecOutageTest, BurstOutageIsAWindow) {
  auto spec = FaultSpec::Parse("burst_start=2,burst_len=3");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->Enabled());
  FaultInjector injector(*spec);
  std::vector<bool> ok;
  for (uint64_t k = 1; k <= 8; ++k) {
    ok.push_back(injector.Decide(k).status.ok());
  }
  // Ordinals 2, 3, 4 fall in the burst; the node recovers afterwards.
  EXPECT_EQ(ok, std::vector<bool>(
                    {true, true, false, false, false, true, true, true}));
  EXPECT_EQ(injector.outage_failures(), 3u);
}

TEST(FaultSpecOutageTest, OutageFieldsRoundTripThroughToString) {
  for (const char* text :
       {"down_after=5", "burst_start=10,burst_len=60",
        "seed=9,transient=0.25,down_after=100"}) {
    auto spec = FaultSpec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
    auto reparsed = FaultSpec::Parse(spec->ToString());
    ASSERT_TRUE(reparsed.ok()) << spec->ToString();
    EXPECT_EQ(reparsed->ToString(), spec->ToString()) << text;
    EXPECT_EQ(reparsed->down_after, spec->down_after) << text;
    EXPECT_EQ(reparsed->burst_start, spec->burst_start) << text;
    EXPECT_EQ(reparsed->burst_len, spec->burst_len) << text;
  }
  EXPECT_FALSE(FaultSpec::Parse("down_after=-2").ok());
}

// ----------------------------------------------------- ShardFaultSpec

TEST(ShardFaultSpecTest, ParsesAndRoundTrips) {
  auto spec = ShardFaultSpec::Parse("2:down_after=40;0:transient=0.2,seed=7");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(spec->Enabled());
  ASSERT_EQ(spec->per_shard.size(), 2u);
  EXPECT_EQ(spec->per_shard.at(2).down_after, 40);
  EXPECT_DOUBLE_EQ(spec->per_shard.at(0).transient_probability, 0.2);
  auto reparsed = ShardFaultSpec::Parse(spec->ToString());
  ASSERT_TRUE(reparsed.ok()) << spec->ToString();
  EXPECT_EQ(reparsed->ToString(), spec->ToString());
}

TEST(ShardFaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ShardFaultSpec::Parse("down_after=4").ok());     // no index
  EXPECT_FALSE(ShardFaultSpec::Parse("-1:down_after=4").ok());  // negative
  EXPECT_FALSE(ShardFaultSpec::Parse("x:down_after=4").ok());   // non-int
  EXPECT_FALSE(
      ShardFaultSpec::Parse("1:down_after=4;1:down_after=9").ok());  // dup
  EXPECT_FALSE(ShardFaultSpec::Parse("1:bogus=1").ok());  // bad FaultSpec
}

TEST(ShardFaultSpecTest, SessionRejectsOutOfRangeShardIndex) {
  auto r = Tune(2, 1, "5:down_after=1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

// ------------------------------------------------------------- failover

// Kill each shard of a 4-shard fleet in turn, mid-enumeration (the node
// dies at its 5th call). Recommendations must stay byte-identical to the
// healthy single-server run, with calls conserved and failovers observed.
TEST(ShardFailoverTest, KillEachShardInTurnKeepsRecommendationIdentical) {
  auto baseline = Tune(1, 1, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected_xml = RecommendationXml(*baseline);

  for (int victim = 0; victim < 4; ++victim) {
    const std::string label = StrFormat("victim shard %d", victim);
    auto faulty = Tune(4, 3, StrFormat("%d:down_after=5", victim));
    ASSERT_TRUE(faulty.ok()) << label << ": "
                             << faulty.status().ToString();
    EXPECT_EQ(expected_xml, RecommendationXml(*faulty)) << label;
    EXPECT_EQ(baseline->current_cost, faulty->current_cost) << label;
    EXPECT_EQ(baseline->recommended_cost, faulty->recommended_cost) << label;
    EXPECT_EQ(baseline->whatif_calls, faulty->whatif_calls) << label;
    // Nothing degraded: the surviving shards absorbed the victim's load.
    EXPECT_EQ(faulty->degraded_calls, 0u) << label;
    // The kill actually fired and calls failed over.
    EXPECT_GT(faulty->injected_outage_faults, 0u) << label;
    EXPECT_GT(faulty->shard_failovers, 0u) << label;
    EXPECT_EQ(faulty->shard_exhausted, 0u) << label;
    ExpectCallsConserved(*faulty, label);
  }
}

// Burst outage (ROADMAP "richer fault profiles"): one shard drops out for a
// 60-call window and then recovers. Failover bridges the window; the
// recovered shard rejoins via health probes; the result is unchanged.
TEST(ShardFailoverTest, BurstOutageFailsOverAndRecovers) {
  auto baseline = Tune(1, 1, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = Tune(3, 2, "1:burst_start=10,burst_len=60");
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*faulty));
  EXPECT_EQ(baseline->whatif_calls, faulty->whatif_calls);
  EXPECT_EQ(faulty->degraded_calls, 0u);
  EXPECT_GT(faulty->injected_outage_faults, 0u);
  EXPECT_GT(faulty->shard_failovers, 0u);
  ExpectCallsConserved(*faulty, "burst outage");
}

// Degraded shards (random transient faults, not death) also fail over
// without perturbing the result.
TEST(ShardFailoverTest, FlakyShardFailsOverDeterministically) {
  auto baseline = Tune(1, 1, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = Tune(4, 3, "2:seed=13,transient=0.5");
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*faulty));
  EXPECT_EQ(baseline->whatif_calls, faulty->whatif_calls);
  EXPECT_EQ(faulty->degraded_calls, 0u);
  ExpectCallsConserved(*faulty, "flaky shard");
}

// Whole-fleet death: every shard is unreachable from the first call. The
// retry layer exhausts the fleet, degradation takes over, and tuning still
// completes with every pricing flagged degraded — a dead fleet behaves
// like a dead single server.
TEST(ShardFailoverTest, WholeFleetDownDegradesGracefully) {
  auto dead = Tune(2, 2, "0:down_after=0;1:down_after=0");
  ASSERT_TRUE(dead.ok()) << dead.status().ToString();
  EXPECT_GT(dead->whatif_calls, 0u);
  EXPECT_EQ(dead->degraded_calls, dead->whatif_calls);
  EXPECT_EQ(dead->shard_successes, 0u);
  EXPECT_GT(dead->shard_exhausted, 0u);
  ExpectCallsConserved(*dead, "dead fleet");
  // Every statement is flagged degraded in the report.
  for (const auto& s : dead->report.statements) {
    EXPECT_TRUE(s.degraded) << s.sql;
  }
}

// ------------------------------------------------------------- fail-slow

// Fail-slow chaos: one shard answers every call successfully but ~2000x
// late from its 5th call on — the failure mode crash-stop health tracking
// cannot see (nothing ever *fails*). The latency-EWMA detector demotes it
// to probe-only routing; the fast shards absorb its keys; and because
// demotion is routing-only, the recommendation stays byte-identical to the
// healthy single-server run.
TEST(ShardFailoverTest, FailSlowShardIsDemotedWithoutChangingTheResult) {
  auto baseline = Tune(1, 1, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = Tune(4, 3, "2:latency_ms=0.05,slow_after=5,slow_factor=2000",
                     /*slow_threshold=*/4);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*faulty));
  EXPECT_EQ(baseline->current_cost, faulty->current_cost);
  EXPECT_EQ(baseline->recommended_cost, faulty->recommended_cost);
  EXPECT_EQ(baseline->whatif_calls, faulty->whatif_calls);
  // Fail-slow never fails a call: no retries, no degradation, no failover
  // hops forced by errors — the detector acted on latency alone.
  EXPECT_EQ(faulty->degraded_calls, 0u);
  EXPECT_EQ(faulty->injected_outage_faults, 0u);
  EXPECT_EQ(faulty->shard_exhausted, 0u);
  EXPECT_GT(faulty->shard_slow_demotions, 0u);
  ExpectCallsConserved(*faulty, "fail-slow shard");
  // The report surfaces the isolation events.
  EXPECT_EQ(faulty->report.shard_slow_demotions,
            faulty->shard_slow_demotions);
  EXPECT_NE(faulty->report.ToText().find("slow demotions"),
            std::string::npos);
}

// Combined chaos: a burst outage on one shard while another turns
// fail-slow. Crash-stop failover bridges the outage, the slowness detector
// sidelines the laggard, and the result is still byte-identical.
TEST(ShardFailoverTest, BurstOutagePlusFailSlowKeepsRecommendationIdentical) {
  auto baseline = Tune(1, 1, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = Tune(4, 3,
                     "1:burst_start=10,burst_len=40;"
                     "2:latency_ms=0.05,slow_after=5,slow_factor=2000",
                     /*slow_threshold=*/4);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*faulty));
  EXPECT_EQ(baseline->whatif_calls, faulty->whatif_calls);
  EXPECT_EQ(faulty->degraded_calls, 0u);
  EXPECT_GT(faulty->injected_outage_faults, 0u);
  EXPECT_GT(faulty->shard_failovers, 0u);
  EXPECT_GT(faulty->shard_slow_demotions, 0u);
  ExpectCallsConserved(*faulty, "burst + fail-slow");
}

// The detector is disabled by default (slow_threshold = 0): the same
// fail-slow shard drags the run but demotes nothing, and the result is
// still identical — slowness never threatens correctness, only wall-clock.
TEST(ShardFailoverTest, DetectorOffToleratesFailSlowShard) {
  auto baseline = Tune(1, 1, "");
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = Tune(3, 2, "1:latency_ms=0.05,slow_after=5,slow_factor=50");
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*faulty));
  EXPECT_EQ(faulty->shard_slow_demotions, 0u);
  ExpectCallsConserved(*faulty, "detector off");
}

// A shard-0 fault spec and a whole-session fault spec would stack two
// injectors on the tuning server; the session refuses the ambiguity.
TEST(ShardFailoverTest, Shard0SpecConflictsWithSessionFaultSpec) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.shards = 2;
  opts.fault_spec = "seed=3,transient=0.1";
  opts.shard_fault_spec = "0:down_after=5";
  TuningSession session(prod.get(), opts);
  auto r = session.Tune(SeedWorkload());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
}

}  // namespace
}  // namespace dta::tuner
