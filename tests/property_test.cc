// Property-based sweeps (parameterized over seeds):
//   * SQL print/parse/signature stability for randomly generated statements;
//   * configuration XML round trips preserve identity;
//   * selectivity estimates stay within [0, 1] and cardinalities within
//     table bounds for random predicates;
//   * execution results are invariant under randomly generated physical
//     designs.

#include <gtest/gtest.h>

#include <memory>

#include "catalog/physical_design.h"
#include "common/strings.h"
#include "dta/xml_schema.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/signature.h"
#include "stats/builder.h"
#include "storage/datagen.h"

namespace dta {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::PartitionScheme;
using catalog::TableSchema;

// ---------------------------------------------------------------- helpers

// Random statement generator over a fixed two-table schema.
std::string RandomStatement(Random* rng) {
  auto lit = [&]() -> std::string {
    switch (rng->Uniform(0, 2)) {
      case 0:
        return StrFormat("%lld", static_cast<long long>(
                                     rng->Uniform(-1000, 100000)));
      case 1:
        return StrFormat("%.3f", rng->UniformReal(0, 500));
      default:
        return "'" + rng->AlphaString(6) + "'";
    }
  };
  const char* t_cols[] = {"a", "b", "c"};
  auto col = [&]() { return t_cols[rng->Uniform(0, 2)]; };
  auto pred = [&]() -> std::string {
    switch (rng->Uniform(0, 3)) {
      case 0:
        return StrFormat("%s = %s", col(), lit().c_str());
      case 1:
        return StrFormat("%s < %s", col(), lit().c_str());
      case 2:
        return StrFormat("%s BETWEEN %lld AND %lld", col(),
                         static_cast<long long>(rng->Uniform(0, 100)),
                         static_cast<long long>(rng->Uniform(101, 1000)));
      default:
        return StrFormat("%s IN (%s, %s)", col(), lit().c_str(),
                         lit().c_str());
    }
  };
  switch (rng->Uniform(0, 3)) {
    case 0:
      return StrFormat("SELECT %s, COUNT(*) FROM t WHERE %s GROUP BY %s",
                       col(), pred().c_str(), col());
    case 1:
      return StrFormat("SELECT %s FROM t WHERE %s AND %s ORDER BY %s DESC",
                       col(), pred().c_str(), pred().c_str(), col());
    case 2:
      return StrFormat("UPDATE t SET a = %lld WHERE %s",
                       static_cast<long long>(rng->Uniform(0, 9)),
                       pred().c_str());
    default:
      return StrFormat("DELETE FROM t WHERE %s", pred().c_str());
  }
}

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

// print(parse(x)) is a fixpoint and signatures are stable across the trip.
TEST_P(SeededProperty, PrintParseFixpointAndSignatureStability) {
  Random rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    std::string text = RandomStatement(&rng);
    auto s1 = sql::ParseStatement(text);
    ASSERT_TRUE(s1.ok()) << text;
    std::string printed = sql::ToSql(*s1);
    auto s2 = sql::ParseStatement(printed);
    ASSERT_TRUE(s2.ok()) << printed;
    EXPECT_EQ(printed, sql::ToSql(*s2)) << text;
    EXPECT_EQ(sql::SignatureHash(*s1), sql::SignatureHash(*s2)) << text;
    EXPECT_EQ(sql::SignatureText(*s1), sql::SignatureText(*s2)) << text;
  }
}

// Random configurations survive the XML round trip with identity intact.
TEST_P(SeededProperty, ConfigurationXmlRoundTrip) {
  Random rng(GetParam() * 31 + 7);
  Configuration config;
  const char* tables[] = {"t", "u", "v"};
  const char* cols[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 6; ++i) {
    IndexDef ix;
    ix.table = tables[rng.Uniform(0, 2)];
    size_t nkeys = static_cast<size_t>(rng.Uniform(1, 3));
    std::vector<const char*> pool(cols, cols + 4);
    rng.Shuffle(&pool);
    for (size_t k = 0; k < nkeys; ++k) ix.key_columns.push_back(pool[k]);
    for (size_t k = nkeys; k < nkeys + rng.Uniform(0, 2) && k < 4; ++k) {
      ix.included_columns.push_back(pool[k]);
    }
    ix.clustered = rng.Bernoulli(0.2);
    if (rng.Bernoulli(0.3)) {
      PartitionScheme scheme;
      scheme.column = cols[rng.Uniform(0, 3)];
      int64_t b = rng.Uniform(0, 50);
      for (int j = 0; j < 3; ++j) {
        scheme.boundaries.push_back(sql::Value::Int(b));
        b += rng.Uniform(1, 100);
      }
      ix.partitioning = scheme;
    }
    Status s = config.AddIndex(std::move(ix));
    (void)s;  // duplicates / clustered conflicts are fine to skip
  }
  if (rng.Bernoulli(0.5)) {
    PartitionScheme scheme;
    scheme.column = "a";
    scheme.boundaries = {sql::Value::Int(10), sql::Value::Int(20)};
    config.SetTablePartitioning("t", scheme);
  }
  auto xml_elem = tuner::ConfigurationToXml(config);
  auto parsed = tuner::ConfigurationFromXml(*xml_elem);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Fingerprint(), config.Fingerprint());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ------------------------------------------------ estimation sanity sweep

class EstimationProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    env_ = std::make_unique<Env>();
    TableSchema t("t", {{"a", ColumnType::kInt, 8},
                        {"b", ColumnType::kInt, 8},
                        {"c", ColumnType::kDouble, 8}});
    t.set_row_count(40000);
    storage::TableGenSpec spec;
    spec.schema = t;
    spec.column_specs = {storage::ColumnSpec::Sequential(),
                         storage::ColumnSpec::ZipfInt(1, 200, 0.9),
                         storage::ColumnSpec::UniformReal(0, 1000)};
    spec.rows = 40000;
    Random rng(99);
    auto data = storage::GenerateTable(spec, &rng);
    ASSERT_TRUE(data.ok());
    catalog::Database db("db");
    ASSERT_TRUE(db.AddTable(t).ok());
    ASSERT_TRUE(env_->catalog.AddDatabase(std::move(db)).ok());
    for (const char* col : {"a", "b", "c"}) {
      auto s = stats::BuildFromData("db", t, *data, {col});
      ASSERT_TRUE(s.ok());
      env_->stats.Put(std::move(s).value());
    }
    env_->provider =
        std::make_unique<optimizer::StatsProvider>(&env_->stats);
    env_->opt = std::make_unique<optimizer::Optimizer>(
        env_->catalog, *env_->provider, optimizer::HardwareParams());
  }
  static void TearDownTestSuite() {
    env_.reset();
  }
  struct Env {
    catalog::Catalog catalog;
    stats::StatsManager stats;
    std::unique_ptr<optimizer::StatsProvider> provider;
    std::unique_ptr<optimizer::Optimizer> opt;
  };
  static std::unique_ptr<Env> env_;
};

std::unique_ptr<EstimationProperty::Env> EstimationProperty::env_;

TEST_P(EstimationProperty, CardinalitiesWithinBounds) {
  Random rng(GetParam() * 101 + 3);
  for (int i = 0; i < 40; ++i) {
    const char* cols[] = {"a", "b", "c"};
    const char* col = cols[rng.Uniform(0, 2)];
    std::string q;
    switch (rng.Uniform(0, 2)) {
      case 0:
        q = StrFormat("SELECT a FROM t WHERE %s = %lld", col,
                      static_cast<long long>(rng.Uniform(-10, 50000)));
        break;
      case 1:
        q = StrFormat("SELECT a FROM t WHERE %s > %lld AND %s < %lld", col,
                      static_cast<long long>(rng.Uniform(-10, 20000)), col,
                      static_cast<long long>(rng.Uniform(20001, 60000)));
        break;
      default:
        q = StrFormat("SELECT b, COUNT(*) FROM t WHERE c < %.2f GROUP BY b",
                      rng.UniformReal(0, 1200));
        break;
    }
    auto stmt = sql::ParseStatement(q);
    ASSERT_TRUE(stmt.ok()) << q;
    auto plan = env_->opt->OptimizeSelect(stmt->select(), Configuration());
    ASSERT_TRUE(plan.ok()) << q;
    EXPECT_GE(plan->cost, 0) << q;
    // Output cardinality can never exceed the table size.
    EXPECT_LE(plan->root->est_rows, 40000 * 1.01) << q;
    EXPECT_GE(plan->root->est_rows, 0) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimationProperty,
                         ::testing::Values(1, 2, 3, 4));

// ----------------------------------------- execution invariance under
// randomly generated physical designs (stronger version of the fixed-config
// invariance test in engine_test.cc).

class RandomDesignProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDesignProperty, RandomConfigurationsPreserveResults) {
  Random rng(GetParam() * 7 + 1);
  // Small schema + data.
  TableSchema t("t", {{"a", ColumnType::kInt, 8},
                      {"b", ColumnType::kInt, 8},
                      {"c", ColumnType::kDouble, 8}});
  t.set_row_count(3000);
  storage::TableGenSpec spec;
  spec.schema = t;
  spec.column_specs = {storage::ColumnSpec::Sequential(),
                       storage::ColumnSpec::UniformInt(1, 40),
                       storage::ColumnSpec::UniformReal(0, 100)};
  spec.rows = 3000;
  auto data = storage::GenerateTable(spec, &rng);
  ASSERT_TRUE(data.ok());

  catalog::Catalog cat;
  catalog::Database db("db");
  ASSERT_TRUE(db.AddTable(t).ok());
  ASSERT_TRUE(cat.AddDatabase(std::move(db)).ok());
  stats::StatsManager sm;
  optimizer::StatsProvider provider(&sm);
  optimizer::Optimizer opt(cat, provider, optimizer::HardwareParams());

  class OneTable : public engine::DataSource {
   public:
    explicit OneTable(const storage::TableData* d) : d_(d) {}
    const storage::TableData* Table(const std::string&,
                                    const std::string& name) const override {
      return name == "t" ? d_ : nullptr;
    }
    const storage::TableData* d_;
  };
  OneTable source(&*data);
  engine::Executor exec(cat, &source);

  const char* queries[] = {
      "SELECT a FROM t WHERE b = 7",
      "SELECT b, COUNT(*), SUM(c) FROM t GROUP BY b",
      "SELECT a, c FROM t WHERE a BETWEEN 100 AND 200 ORDER BY a",
      "SELECT COUNT(*) FROM t WHERE c < 50 AND b > 20",
  };
  // Baseline results under the raw design.
  std::vector<std::string> baselines;
  auto canon = [](const engine::QueryResult& r) {
    std::vector<std::string> rows;
    for (const auto& row : r.rows) {
      std::string s;
      for (const auto& v : row) {
        if (v.type() == sql::ValueType::kDouble) {
          s += StrFormat("%.4f|", v.AsDoubleStrict());
        } else {
          s += v.ToSqlLiteral() + "|";
        }
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return StrJoin(rows, "\n");
  };
  for (const char* q : queries) {
    auto stmt = sql::ParseStatement(q);
    ASSERT_TRUE(stmt.ok());
    auto r = exec.ExecuteSelect(stmt->select(), Configuration(), opt);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    baselines.push_back(canon(*r));
  }

  // 5 random designs per seed.
  const char* cols[] = {"a", "b", "c"};
  for (int design = 0; design < 5; ++design) {
    Configuration config;
    int n_indexes = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < n_indexes; ++i) {
      IndexDef ix;
      ix.table = "t";
      std::vector<const char*> pool(cols, cols + 3);
      rng.Shuffle(&pool);
      size_t nkeys = static_cast<size_t>(rng.Uniform(1, 2));
      for (size_t k = 0; k < nkeys; ++k) ix.key_columns.push_back(pool[k]);
      if (rng.Bernoulli(0.5)) {
        for (size_t k = nkeys; k < 3; ++k) {
          ix.included_columns.push_back(pool[k]);
        }
      }
      ix.clustered = config.FindClusteredIndex("t") == nullptr &&
                     rng.Bernoulli(0.3);
      Status s = config.AddIndex(std::move(ix));
      (void)s;
    }
    if (rng.Bernoulli(0.4)) {
      PartitionScheme scheme;
      scheme.column = "a";
      scheme.boundaries = {sql::Value::Int(rng.Uniform(100, 1000)),
                           sql::Value::Int(rng.Uniform(1001, 2500))};
      config.SetTablePartitioning("t", scheme);
    }
    for (size_t qi = 0; qi < 4; ++qi) {
      auto stmt = sql::ParseStatement(queries[qi]);
      ASSERT_TRUE(stmt.ok());
      auto r = exec.ExecuteSelect(stmt->select(), config, opt);
      ASSERT_TRUE(r.ok()) << queries[qi];
      EXPECT_EQ(canon(*r), baselines[qi])
          << queries[qi] << "\nconfig: " << config.Fingerprint();
    }
    exec.ClearStructureCache();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDesignProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace dta
