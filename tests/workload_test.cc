#include <gtest/gtest.h>

#include "common/random.h"
#include "common/strings.h"
#include "workload/compression.h"
#include "workload/workload.h"

namespace dta::workload {
namespace {

TEST(WorkloadTest, FromScript) {
  auto w = Workload::FromScript(
      "SELECT a FROM t WHERE b = 1; UPDATE t SET a = 2 WHERE b = 3; "
      "DELETE FROM t WHERE b = 9;");
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  EXPECT_EQ(w->size(), 3u);
  EXPECT_DOUBLE_EQ(w->TotalWeight(), 3.0);
  EXPECT_NEAR(w->UpdateFraction(), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(w->DistinctTemplates(), 3u);
}

TEST(WorkloadTest, ParseErrorsPropagate) {
  EXPECT_FALSE(Workload::FromScript("SELECT FROM nothing").ok());
}

TEST(WorkloadTest, TemplatesShareSignatures) {
  auto w = Workload::FromScript(
      "SELECT a FROM t WHERE b = 1; SELECT a FROM t WHERE b = 2; "
      "SELECT a FROM t WHERE c = 1;");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->DistinctTemplates(), 2u);
  EXPECT_EQ(w->statements()[0].signature, w->statements()[1].signature);
  EXPECT_NE(w->statements()[0].signature, w->statements()[2].signature);
}

Workload TemplatizedWorkload(size_t per_template, int templates,
                             uint64_t seed) {
  Random rng(seed);
  Workload w;
  for (int t = 0; t < templates; ++t) {
    for (size_t i = 0; i < per_template; ++i) {
      std::string q = StrFormat(
          "SELECT c%d FROM t WHERE k%d = %lld AND v < %lld", t, t,
          static_cast<long long>(rng.Uniform(1, 1000)),
          static_cast<long long>(rng.Uniform(1, 100)));
      auto s = Workload::FromScript(q);
      EXPECT_TRUE(s.ok());
      w.Add(s->statements()[0].stmt.Clone());
    }
  }
  return w;
}

TEST(CompressionTest, SmallWorkloadsPassThrough) {
  Workload w = TemplatizedWorkload(4, 5, 1);  // 20 statements < min size
  CompressionStats stats;
  Workload c = CompressWorkload(w, {}, &stats);
  EXPECT_EQ(c.size(), w.size());
  EXPECT_DOUBLE_EQ(stats.CompressionRatio(), 1.0);
}

TEST(CompressionTest, TemplatizedWorkloadCompressesHard) {
  Workload w = TemplatizedWorkload(100, 10, 2);  // 1000 statements
  CompressionStats stats;
  Workload c = CompressWorkload(w, {}, &stats);
  EXPECT_EQ(stats.original_statements, 1000u);
  EXPECT_EQ(stats.templates, 10u);
  EXPECT_LE(c.size(), 10u * 8u);  // at most the per-template cap
  EXPECT_GE(stats.CompressionRatio(), 10.0);
  // Weight is conserved.
  EXPECT_NEAR(c.TotalWeight(), 1000.0, 1e-6);
}

TEST(CompressionTest, DistinctTemplatesDoNotCompress) {
  // Every statement its own template (like TPCH22): nothing to merge.
  Workload w;
  for (int i = 0; i < 50; ++i) {
    auto s = Workload::FromScript(
        StrFormat("SELECT a%d FROM t%d WHERE b%d = 1", i, i, i));
    ASSERT_TRUE(s.ok());
    w.Add(s->statements()[0].stmt.Clone());
  }
  CompressionStats stats;
  Workload c = CompressWorkload(w, {}, &stats);
  EXPECT_EQ(c.size(), 50u);
  EXPECT_DOUBLE_EQ(stats.CompressionRatio(), 1.0);
}

TEST(CompressionTest, RepresentativesCoverConstantSpread) {
  // Two clearly separated constant clusters must yield >= 2 representatives.
  Workload w;
  for (int i = 0; i < 40; ++i) {
    long long v = i < 20 ? 10 + i % 3 : 100000 + i % 3;
    auto s = Workload::FromScript(
        StrFormat("SELECT a FROM t WHERE b = %lld", v));
    ASSERT_TRUE(s.ok());
    w.Add(s->statements()[0].stmt.Clone());
  }
  CompressionStats stats;
  Workload c = CompressWorkload(w, {}, &stats);
  EXPECT_GE(c.size(), 2u);
  EXPECT_LE(c.size(), 8u);
  EXPECT_NEAR(c.TotalWeight(), 40.0, 1e-6);
}

TEST(CompressionTest, UpdatesCompressToo) {
  Random rng(5);
  Workload w;
  for (int i = 0; i < 200; ++i) {
    auto s = Workload::FromScript(
        StrFormat("UPDATE t SET v = %lld WHERE k = %lld",
                  static_cast<long long>(rng.Uniform(1, 50)),
                  static_cast<long long>(rng.Uniform(1, 10000))));
    ASSERT_TRUE(s.ok());
    w.Add(s->statements()[0].stmt.Clone());
  }
  CompressionStats stats;
  Workload c = CompressWorkload(w, {}, &stats);
  EXPECT_LE(c.size(), 8u);
  EXPECT_NEAR(c.TotalWeight(), 200.0, 1e-6);
  EXPECT_FALSE(c.statements()[0].stmt.is_select());
}

TEST(CompressionTest, ThresholdControlsGranularity) {
  Workload w = TemplatizedWorkload(100, 4, 9);
  CompressionOptions fine;
  fine.distance_threshold = 0.05;
  CompressionOptions coarse;
  coarse.distance_threshold = 0.9;
  Workload cf = CompressWorkload(w, fine);
  Workload cc = CompressWorkload(w, coarse);
  EXPECT_GE(cf.size(), cc.size());
  EXPECT_LE(cc.size(), 4u * 2u);
}

}  // namespace
}  // namespace dta::workload
