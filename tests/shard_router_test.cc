// Sharded costing backend tests: rendezvous routing properties, the
// bounded in-flight window, and the headline determinism property — for
// random workloads and any shard count 1–8, recommendations, costs, and
// whatif_calls are byte-identical to the single-server baseline at any
// thread count (run under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "dta/cost_service.h"
#include "dta/shard_router.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as parallel_tuning_test: two joinable tables with
// real data. Every run gets a fresh server so runs never share state.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

// A random workload over the fixture's schema: point lookups, range
// aggregates, a join, and occasional DML, with randomized literals so the
// candidate space differs run to run.
workload::Workload RandomWorkload(uint64_t seed) {
  Random rng(seed);
  const int count = static_cast<int>(rng.Uniform(4, 7));
  std::string script;
  for (int i = 0; i < count; ++i) {
    if (!script.empty()) script += ";";
    switch (rng.Uniform(0, 5)) {
      case 0:
        script += StrFormat("SELECT o_price FROM orders WHERE o_id = %d",
                            static_cast<int>(rng.Uniform(1, 30000)));
        break;
      case 1:
        script += StrFormat("SELECT i_qty FROM items WHERE i_part = %d",
                            static_cast<int>(rng.Uniform(1, 2000)));
        break;
      case 2:
        script += StrFormat(
            "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < "
            "'199%d-01-01' GROUP BY o_cust",
            static_cast<int>(rng.Uniform(4, 8)));
        break;
      case 3:
        script +=
            "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE "
            "o_id = i_oid GROUP BY o_cust";
        break;
      case 4:
        script += StrFormat("SELECT o_id FROM orders WHERE o_price > %d",
                            static_cast<int>(rng.Uniform(100, 9000)));
        break;
      default:
        script += StrFormat("UPDATE items SET i_qty = %d WHERE i_part = %d",
                            static_cast<int>(rng.Uniform(1, 50)),
                            static_cast<int>(rng.Uniform(1, 2000)));
        break;
    }
  }
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

std::string RecommendationXml(const TuningResult& r) {
  return ConfigurationToXml(r.recommendation)->ToString();
}

Result<TuningResult> TuneSharded(const workload::Workload& w, int shards,
                                 int threads, double slow_threshold = 0) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.shards = shards;
  opts.num_threads = threads;
  opts.shard_slow_threshold = slow_threshold;
  TuningSession session(prod.get(), opts);
  workload::Workload copy;
  for (const auto& ws : w.statements()) copy.Add(ws.stmt.Clone(), ws.weight);
  return session.Tune(copy);
}

// ------------------------------------------------------------- rendezvous

TEST(ShardRouterTest, RendezvousRankingIsDeterministicAndComplete) {
  auto prod = MakeProduction();
  // Ranking is a pure function of (key, shard index); the servers are never
  // called, so one server can stand in for all shards.
  std::vector<server::Server*> servers(6, prod.get());
  ShardRouter router(servers, ShardRouterOptions());

  Random rng(99);
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.Uniform(1, 1 << 30));
    std::vector<size_t> order = router.RankShards(key);
    ASSERT_EQ(order.size(), 6u);
    // A permutation of all shards.
    std::set<size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 6u);
    // Deterministic.
    EXPECT_EQ(order, router.RankShards(key));
  }
}

// Rendezvous scores are independent of the shard count: dropping the last
// shard must leave the relative order of the remaining shards unchanged
// (only keys homed on the dropped shard re-home; no global reshuffle).
TEST(ShardRouterTest, RankingIsStableUnderShardRemoval) {
  auto prod = MakeProduction();
  std::vector<server::Server*> five(5, prod.get());
  std::vector<server::Server*> four(4, prod.get());
  ShardRouter router5(five, ShardRouterOptions());
  ShardRouter router4(four, ShardRouterOptions());

  Random rng(7);
  int rehomed = 0;
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.Uniform(1, 1 << 30));
    std::vector<size_t> with5 = router5.RankShards(key);
    std::vector<size_t> with4 = router4.RankShards(key);
    // Erase shard 4 from the 5-shard ranking: what remains must be exactly
    // the 4-shard ranking.
    std::vector<size_t> projected;
    for (size_t s : with5) {
      if (s != 4) projected.push_back(s);
    }
    EXPECT_EQ(projected, with4) << "key " << key;
    if (with5[0] == 4) ++rehomed;
  }
  // Sanity: the dropped shard owned roughly 1/5 of the keys, so some (but
  // far from all) keys re-homed.
  EXPECT_GT(rehomed, 20);
  EXPECT_LT(rehomed, 120);
}

TEST(ShardRouterTest, KeysSpreadAcrossShards) {
  auto prod = MakeProduction();
  std::vector<server::Server*> servers(4, prod.get());
  ShardRouter router(servers, ShardRouterOptions());
  std::vector<int> owned(4, 0);
  Random rng(3);
  for (int i = 0; i < 400; ++i) {
    const uint64_t key = static_cast<uint64_t>(rng.Uniform(1, 1 << 30));
    owned[router.RankShards(key)[0]] += 1;
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(owned[s], 40) << "shard " << s << " starved";
  }
}

// --------------------------------------------------------- back-pressure

// Hammer a 2-shard router through a CostService from many threads with a
// tiny in-flight window: results stay correct and the per-shard concurrency
// never exceeds the window.
TEST(ShardRouterTest, BoundedInflightWindowHoldsUnderHammering) {
  auto prod = MakeProduction();
  auto replica = prod->Clone("prod-shard1");
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  workload::Workload w = RandomWorkload(21);

  ShardRouterOptions options;
  options.max_inflight_per_shard = 2;
  ShardRouter router({prod.get(), replica->get()}, options);
  CostService service(&router, nullptr, &w, CostService::Config());

  CostService reference(prod.get(), nullptr, &w);
  std::vector<Configuration> configs;
  configs.push_back(Configuration());
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "orders", .key_columns = {"o_cust"}})
            .ok());
    configs.push_back(c);
  }
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "items", .key_columns = {"i_part"}})
            .ok());
    configs.push_back(c);
  }
  std::vector<std::vector<double>> expected(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    for (const Configuration& c : configs) {
      auto r = reference.StatementCost(i, c);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected[i].push_back(*r);
    }
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round) {
        for (size_t n = 0; n < w.size() * configs.size(); ++n) {
          size_t pos = (n * (t + 1) + round) % (w.size() * configs.size());
          size_t i = pos % w.size();
          size_t j = pos / w.size();
          auto r = service.StatementCost(i, configs[j]);
          if (!r.ok() || *r != expected[i][j]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  size_t total_calls = 0;
  for (size_t s = 0; s < router.shard_count(); ++s) {
    EXPECT_LE(router.inflight_peak(s), 2u) << "shard " << s;
    EXPECT_TRUE(router.healthy(s)) << "shard " << s;
    total_calls += router.calls(s);
  }
  // Healthy fleet: every attempt succeeded, nothing failed over, and the
  // logical call count matches the single-server reference exactly.
  EXPECT_EQ(router.successes(), total_calls);
  EXPECT_EQ(router.failovers(), 0u);
  EXPECT_EQ(router.exhausted(), 0u);
  EXPECT_EQ(service.whatif_calls(), reference.whatif_calls());
  EXPECT_EQ(router.successes(), service.whatif_calls());
}

// --------------------------------------------------------- config clamping

// Degenerate option values are clamped to their documented floors instead
// of crashing (or worse, deadlocking a zero-slot window); the clamped
// values are observable through options().
TEST(ShardRouterTest, OptionsAreClampedToSaneFloors) {
  auto prod = MakeProduction();
  std::vector<server::Server*> servers(2, prod.get());
  ShardRouterOptions raw;
  raw.max_inflight_per_shard = 0;
  raw.unhealthy_after = -3;
  raw.probe_interval = 0;
  raw.slow_min_samples = 0;
  raw.slow_floor_ms = -5;
  raw.clock = nullptr;
  ShardRouter router(servers, raw);
  EXPECT_EQ(router.options().max_inflight_per_shard, 1);
  EXPECT_EQ(router.options().unhealthy_after, 1);
  EXPECT_EQ(router.options().probe_interval, 1);
  EXPECT_EQ(router.options().slow_min_samples, 1);
  EXPECT_EQ(router.options().slow_floor_ms, 0.0);
  EXPECT_NE(router.options().clock, nullptr);

  // In-range values pass through untouched.
  ShardRouterOptions fine;
  fine.max_inflight_per_shard = 3;
  fine.unhealthy_after = 1;
  fine.probe_interval = 1;
  ShardRouter router2(servers, fine);
  EXPECT_EQ(router2.options().max_inflight_per_shard, 3);
  EXPECT_EQ(router2.options().unhealthy_after, 1);
  EXPECT_EQ(router2.options().probe_interval, 1);
}

// unhealthy_after=1 / probe_interval=1 are the tightest legal settings:
// demote on the first failure, probe on every routing decision. A shard
// down for a short burst is routed around immediately, loses no calls, and
// rejoins on its first good probe.
TEST(ShardRouterTest, TightestHealthSettingsStillRecover) {
  auto prod = MakeProduction();
  auto replica = prod->Clone("prod-shard1");
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  workload::Workload w = RandomWorkload(33);

  FaultSpec fault;
  fault.burst_start = 0;
  fault.burst_len = 3;
  FaultInjector injector(fault);
  replica->get()->set_fault_injector(&injector);

  ShardRouterOptions options;
  options.unhealthy_after = 1;
  options.probe_interval = 1;
  ShardRouter router({prod.get(), replica->get()}, options);

  const sql::Statement& stmt = w.statements()[0].stmt;
  const Configuration base_config;
  for (uint64_t key = 1; key <= 40; ++key) {
    WhatIfCall call;
    call.stmt = &stmt;
    call.config = &base_config;
    call.call_key = key;
    auto r = router.WhatIfCost(call);
    ASSERT_TRUE(r.ok()) << "key " << key << ": " << r.status().ToString();
  }

  // Every burst failure failed over to the healthy shard; nothing was lost
  // and the burst shard is healthy again by the end.
  EXPECT_EQ(router.successes(), 40u);
  EXPECT_EQ(router.failovers(), 3u);
  EXPECT_EQ(router.exhausted(), 0u);
  EXPECT_TRUE(router.healthy(1));
  EXPECT_EQ(injector.outage_failures(), 3u);
  EXPECT_GT(router.calls(1), 3u);  // probes + post-recovery traffic
}

// ------------------------------------------------- slowness detection

// The detector demotes a shard whose latency EWMA exceeds slow_threshold x
// the fleet median, and recovers it once probe samples decay the EWMA back
// under the limit. Driven through the test hook so no real sleeping.
TEST(ShardRouterTest, SlownessDetectorDemotesAndRecovers) {
  auto prod = MakeProduction();
  std::vector<server::Server*> servers(3, prod.get());
  ShardRouterOptions options;
  options.slow_threshold = 4;
  options.slow_min_samples = 4;
  options.slow_floor_ms = 1.0;
  ShardRouter router(servers, options);

  for (int i = 0; i < 8; ++i) {
    router.RecordLatencyForTest(0, 10);
    router.RecordLatencyForTest(1, 10);
  }
  EXPECT_FALSE(router.slow(0));
  EXPECT_FALSE(router.slow(1));

  // 20x the fleet median: demoted as soon as it has slow_min_samples.
  for (int i = 0; i < 8; ++i) router.RecordLatencyForTest(2, 200);
  EXPECT_TRUE(router.slow(2));
  EXPECT_FALSE(router.slow(0));
  EXPECT_FALSE(router.slow(1));
  EXPECT_EQ(router.slow_demotions(), 1u);
  EXPECT_NEAR(router.latency_ewma_ms(2), 200, 1e-9);

  // Probes now measure healthy latency; the EWMA (alpha 0.25) needs a
  // handful of samples to decay under the limit (4 x median 10 = 40).
  int probes = 0;
  while (router.slow(2) && probes < 64) {
    router.RecordLatencyForTest(2, 10);
    ++probes;
  }
  EXPECT_FALSE(router.slow(2));
  EXPECT_GT(probes, 2);
  EXPECT_LT(probes, 20);
  // Recovery is not a demotion; the counter is monotone per incident.
  EXPECT_EQ(router.slow_demotions(), 1u);
}

// "Slower than the fleet" is meaningless for a fleet of one: no median
// exists, so even an extreme absolute latency never demotes the only shard.
TEST(ShardRouterTest, FleetOfOneIsNeverSlow) {
  auto prod = MakeProduction();
  std::vector<server::Server*> one(1, prod.get());
  ShardRouterOptions options;
  options.slow_threshold = 2;
  options.slow_min_samples = 2;
  ShardRouter router(one, options);
  for (int i = 0; i < 32; ++i) router.RecordLatencyForTest(0, 1000);
  EXPECT_FALSE(router.slow(0));
  EXPECT_EQ(router.slow_demotions(), 0u);
}

// An idle in-process fleet jitters by microseconds. Even a shard 100x over
// the median stays under the absolute floor, so nobody is demoted on noise.
TEST(ShardRouterTest, SlowFloorIgnoresMicrosecondJitter) {
  auto prod = MakeProduction();
  std::vector<server::Server*> servers(3, prod.get());
  ShardRouterOptions options;
  options.slow_threshold = 2;
  options.slow_min_samples = 2;
  options.slow_floor_ms = 1.0;
  ShardRouter router(servers, options);
  for (int i = 0; i < 4; ++i) {
    router.RecordLatencyForTest(0, 0.001);
    router.RecordLatencyForTest(1, 0.001);
    router.RecordLatencyForTest(2, 0.1);  // 100x the median, but < 1ms
  }
  EXPECT_FALSE(router.slow(2));
  EXPECT_EQ(router.slow_demotions(), 0u);
}

// No judgment before slow_min_samples: a single spike cannot demote.
TEST(ShardRouterTest, DetectorWaitsForMinimumSamples) {
  auto prod = MakeProduction();
  std::vector<server::Server*> servers(2, prod.get());
  ShardRouterOptions options;
  options.slow_threshold = 2;
  options.slow_min_samples = 8;
  options.slow_floor_ms = 1.0;
  ShardRouter router(servers, options);
  for (int i = 0; i < 8; ++i) router.RecordLatencyForTest(0, 10);
  for (int i = 0; i < 7; ++i) router.RecordLatencyForTest(1, 1000);
  EXPECT_FALSE(router.slow(1));  // one sample short of a verdict
  router.RecordLatencyForTest(1, 1000);
  EXPECT_TRUE(router.slow(1));
}

// ------------------------------------------------------------ determinism

// The headline property: for random workloads and any shard count 1–8, the
// recommendation document, costs, and whatif_calls are byte-identical to
// the single-server baseline — serial and with a worker pool.
TEST(ShardRouterTest, AnyShardCountMatchesSingleServerBaseline) {
  for (uint64_t seed : {101u, 202u, 303u}) {
    workload::Workload w = RandomWorkload(seed);
    auto baseline = TuneSharded(w, 1, 1);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_EQ(baseline->shards_used, 1);
    EXPECT_EQ(baseline->shard_failovers, 0u);
    const std::string expected_xml = RecommendationXml(*baseline);

    for (int shards : {2, 3, 5, 8}) {
      const int threads = shards % 2 == 0 ? 4 : 1;
      auto sharded = TuneSharded(w, shards, threads);
      ASSERT_TRUE(sharded.ok())
          << "seed " << seed << " shards " << shards << ": "
          << sharded.status().ToString();
      const std::string label =
          StrFormat("seed %llu shards %d threads %d",
                    static_cast<unsigned long long>(seed), shards, threads);
      EXPECT_EQ(sharded->shards_used, shards) << label;
      EXPECT_EQ(baseline->current_cost, sharded->current_cost) << label;
      EXPECT_EQ(baseline->recommended_cost, sharded->recommended_cost)
          << label;
      EXPECT_EQ(expected_xml, RecommendationXml(*sharded)) << label;
      // whatif_calls is exact at any (threads x shards): dedup upstream of
      // the router prices each logical call once.
      EXPECT_EQ(baseline->whatif_calls, sharded->whatif_calls) << label;
      EXPECT_EQ(baseline->enumeration_evaluations,
                sharded->enumeration_evaluations)
          << label;
      ASSERT_EQ(baseline->report.statements.size(),
                sharded->report.statements.size())
          << label;
      for (size_t i = 0; i < baseline->report.statements.size(); ++i) {
        EXPECT_EQ(baseline->report.statements[i].current_cost,
                  sharded->report.statements[i].current_cost)
            << label << " statement " << i;
        EXPECT_EQ(baseline->report.statements[i].recommended_cost,
                  sharded->report.statements[i].recommended_cost)
            << label << " statement " << i;
      }
      // Healthy fleet accounting: one success per logical pricing, no
      // failovers, every attempt accounted to some shard.
      EXPECT_EQ(sharded->shard_successes, sharded->whatif_calls) << label;
      EXPECT_EQ(sharded->shard_failovers, 0u) << label;
      EXPECT_EQ(sharded->shard_exhausted, 0u) << label;
      ASSERT_EQ(sharded->shard_calls.size(), static_cast<size_t>(shards))
          << label;
      size_t attempts = 0;
      for (size_t c : sharded->shard_calls) attempts += c;
      EXPECT_EQ(attempts, sharded->shard_successes) << label;
    }
  }
}

// Enabling the slowness detector cannot change results: demotion is
// routing-only, so whether or not it fires during the run, recommendations
// and every deterministic counter match the single-server baseline.
TEST(ShardRouterTest, SlownessDetectionPreservesDeterminism) {
  workload::Workload w = RandomWorkload(77);
  auto baseline = TuneSharded(w, 1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto detected = TuneSharded(w, 4, 4, /*slow_threshold=*/2);
  ASSERT_TRUE(detected.ok()) << detected.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*detected));
  EXPECT_EQ(baseline->whatif_calls, detected->whatif_calls);
  EXPECT_EQ(baseline->current_cost, detected->current_cost);
  EXPECT_EQ(baseline->recommended_cost, detected->recommended_cost);
}

// The report surfaces the shard topology (and XML output carries it).
TEST(ShardRouterTest, ReportCarriesShardTopology) {
  workload::Workload w = RandomWorkload(55);
  auto sharded = TuneSharded(w, 4, 2);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(sharded->report.shards, 4);
  const std::string text = sharded->report.ToText();
  EXPECT_NE(text.find("Sharded costing: 4 shards"), std::string::npos)
      << text;
  EXPECT_EQ(sharded->report.ToXml()->Attr("Shards"), "4");
}

}  // namespace
}  // namespace dta::tuner
