#include <gtest/gtest.h>

#include <memory>

#include "catalog/physical_design.h"
#include "catalog/schema.h"
#include "sql/parser.h"

namespace dta::catalog {
namespace {

TableSchema MakeLineitem() {
  TableSchema t("lineitem", {{"l_orderkey", ColumnType::kInt, 8},
                             {"l_partkey", ColumnType::kInt, 8},
                             {"l_shipdate", ColumnType::kString, 10},
                             {"l_quantity", ColumnType::kDouble, 8},
                             {"l_extendedprice", ColumnType::kDouble, 8}});
  t.set_row_count(600000);
  return t;
}

PartitionScheme MonthlyScheme() {
  PartitionScheme p;
  p.column = "l_shipdate";
  p.boundaries = {sql::Value::String("1993-01-01"),
                  sql::Value::String("1994-01-01"),
                  sql::Value::String("1995-01-01")};
  return p;
}

TEST(PartitionSchemeTest, PartitionFor) {
  PartitionScheme p = MonthlyScheme();
  EXPECT_EQ(p.PartitionCount(), 4);
  EXPECT_EQ(p.PartitionFor(sql::Value::String("1992-06-01")), 0);
  EXPECT_EQ(p.PartitionFor(sql::Value::String("1993-01-01")), 1);  // boundary
  EXPECT_EQ(p.PartitionFor(sql::Value::String("1994-06-15")), 2);
  EXPECT_EQ(p.PartitionFor(sql::Value::String("1999-01-01")), 3);
}

TEST(PartitionSchemeTest, EqualityAndCanonical) {
  PartitionScheme a = MonthlyScheme();
  PartitionScheme b = MonthlyScheme();
  EXPECT_TRUE(a == b);
  b.boundaries.pop_back();
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.CanonicalString(), b.CanonicalString());
  EXPECT_NE(a.CanonicalString().find("l_shipdate"), std::string::npos);
}

TEST(IndexDefTest, CanonicalNameIdentity) {
  IndexDef a{.table = "lineitem",
             .key_columns = {"l_shipdate", "l_orderkey"},
             .included_columns = {"l_quantity"}};
  IndexDef b{.table = "LINEITEM",
             .key_columns = {"L_SHIPDATE", "L_ORDERKEY"},
             .included_columns = {"L_QUANTITY"}};
  EXPECT_EQ(a.CanonicalName(), b.CanonicalName());
  EXPECT_TRUE(a == b);

  IndexDef c = a;
  c.key_columns = {"l_orderkey", "l_shipdate"};  // key order matters
  EXPECT_NE(a.CanonicalName(), c.CanonicalName());

  IndexDef d = a;
  d.included_columns = {};  // include set matters
  EXPECT_NE(a.CanonicalName(), d.CanonicalName());

  IndexDef e = a;
  e.clustered = true;
  EXPECT_NE(a.CanonicalName(), e.CanonicalName());
}

TEST(IndexDefTest, IncludedColumnsAreASet) {
  IndexDef a{.table = "t", .key_columns = {"k"},
             .included_columns = {"x", "y"}};
  IndexDef b{.table = "t", .key_columns = {"k"},
             .included_columns = {"y", "x"}};
  EXPECT_EQ(a.CanonicalName(), b.CanonicalName());
}

TEST(IndexDefTest, ColumnQueries) {
  IndexDef ix{.table = "lineitem",
              .key_columns = {"l_shipdate", "l_partkey"},
              .included_columns = {"l_quantity"}};
  EXPECT_TRUE(ix.ContainsColumn("L_SHIPDATE"));
  EXPECT_TRUE(ix.ContainsColumn("l_quantity"));
  EXPECT_FALSE(ix.ContainsColumn("l_orderkey"));
  EXPECT_EQ(ix.KeyPrefixMatch({"l_shipdate"}), 1);
  EXPECT_EQ(ix.KeyPrefixMatch({"l_partkey", "l_shipdate"}), 2);
  EXPECT_EQ(ix.KeyPrefixMatch({"l_partkey"}), 0);  // not a prefix
}

TEST(IndexDefTest, SizeEstimates) {
  TableSchema t = MakeLineitem();
  IndexDef narrow{.table = "lineitem", .key_columns = {"l_orderkey"}};
  IndexDef wide{.table = "lineitem",
                .key_columns = {"l_orderkey"},
                .included_columns = {"l_shipdate", "l_quantity",
                                     "l_extendedprice"}};
  EXPECT_GT(wide.EstimateBytes(t), narrow.EstimateBytes(t));
  EXPECT_GT(narrow.EstimateBytes(t), 0u);

  IndexDef clustered{.table = "lineitem",
                     .key_columns = {"l_orderkey"},
                     .clustered = true};
  EXPECT_EQ(clustered.EstimateBytes(t), 0u);  // non-redundant
  EXPECT_EQ(clustered.LeafPages(t), t.DataPages());
}

std::shared_ptr<const sql::SelectStatement> ParseView(const char* q) {
  auto r = sql::ParseStatement(q);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  auto sel = std::make_shared<sql::SelectStatement>(r->select().Clone());
  return sel;
}

TEST(ViewDefTest, IdentityFromDefinition) {
  ViewDef a;
  a.definition = ParseView("SELECT l_orderkey, COUNT(*) FROM lineitem "
                           "WHERE l_shipdate < '1995-01-01' GROUP BY "
                           "l_orderkey");
  ViewDef b;
  b.definition = ParseView("SELECT l_orderkey, COUNT(*) FROM lineitem "
                           "WHERE l_shipdate < '1995-01-01' GROUP BY "
                           "l_orderkey");
  EXPECT_EQ(a.CanonicalName(), b.CanonicalName());

  ViewDef c;
  c.definition = ParseView("SELECT l_orderkey, COUNT(*) FROM lineitem "
                           "WHERE l_shipdate < '1996-06-30' GROUP BY "
                           "l_orderkey");
  // Same template but different constants => different structures.
  EXPECT_NE(a.CanonicalName(), c.CanonicalName());
}

TEST(ViewDefTest, Bytes) {
  ViewDef v;
  v.estimated_rows = 10000;
  v.estimated_row_bytes = 40;
  EXPECT_GT(v.EstimateBytes(), 10000ull * 40);
}

TEST(ConfigurationTest, AddRemoveContains) {
  Configuration c;
  IndexDef ix{.table = "lineitem", .key_columns = {"l_shipdate"}};
  ASSERT_TRUE(c.AddIndex(ix).ok());
  EXPECT_FALSE(c.AddIndex(ix).ok());  // duplicate
  EXPECT_TRUE(c.ContainsStructure(ix.CanonicalName()));
  EXPECT_TRUE(c.RemoveStructure(ix.CanonicalName()));
  EXPECT_FALSE(c.RemoveStructure(ix.CanonicalName()));
  EXPECT_EQ(c.StructureCount(), 0u);
}

TEST(ConfigurationTest, SingleClusteredIndexPerTable) {
  Configuration c;
  IndexDef a{.table = "t", .key_columns = {"x"}, .clustered = true};
  IndexDef b{.table = "t", .key_columns = {"y"}, .clustered = true};
  ASSERT_TRUE(c.AddIndex(a).ok());
  EXPECT_FALSE(c.AddIndex(b).ok());
  EXPECT_NE(c.FindClusteredIndex("T"), nullptr);
  EXPECT_EQ(c.FindClusteredIndex("other"), nullptr);
}

TEST(ConfigurationTest, AlignmentChecks) {
  Configuration c;
  c.SetTablePartitioning("lineitem", MonthlyScheme());
  IndexDef unaligned{.table = "lineitem", .key_columns = {"l_orderkey"}};
  ASSERT_TRUE(c.AddIndex(unaligned).ok());
  EXPECT_FALSE(c.IsAligned("lineitem"));
  EXPECT_FALSE(c.IsFullyAligned());

  Configuration c2;
  c2.SetTablePartitioning("lineitem", MonthlyScheme());
  IndexDef aligned{.table = "lineitem",
                   .key_columns = {"l_orderkey"},
                   .partitioning = MonthlyScheme()};
  ASSERT_TRUE(c2.AddIndex(aligned).ok());
  EXPECT_TRUE(c2.IsAligned("lineitem"));
  EXPECT_TRUE(c2.IsFullyAligned());

  // Unpartitioned table with partitioned index is also unaligned.
  Configuration c3;
  ASSERT_TRUE(c3.AddIndex(aligned).ok());
  EXPECT_FALSE(c3.IsAligned("lineitem"));
}

TEST(ConfigurationTest, FingerprintOrderIndependent) {
  IndexDef a{.table = "t", .key_columns = {"x"}};
  IndexDef b{.table = "t", .key_columns = {"y"}};
  Configuration c1, c2;
  ASSERT_TRUE(c1.AddIndex(a).ok());
  ASSERT_TRUE(c1.AddIndex(b).ok());
  ASSERT_TRUE(c2.AddIndex(b).ok());
  ASSERT_TRUE(c2.AddIndex(a).ok());
  EXPECT_EQ(c1.Fingerprint(), c2.Fingerprint());
  c2.SetTablePartitioning("t", MonthlyScheme());
  EXPECT_NE(c1.Fingerprint(), c2.Fingerprint());
}

TEST(ConfigurationTest, StorageAccounting) {
  Catalog cat;
  Database db("tpch");
  ASSERT_TRUE(db.AddTable(MakeLineitem()).ok());
  ASSERT_TRUE(cat.AddDatabase(std::move(db)).ok());

  Configuration c;
  ASSERT_TRUE(
      c.AddIndex(IndexDef{.table = "lineitem", .key_columns = {"l_shipdate"}})
          .ok());
  uint64_t one = c.EstimateBytes(cat);
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(
      c.AddIndex(IndexDef{.table = "lineitem",
                          .key_columns = {"l_partkey"},
                          .included_columns = {"l_extendedprice"}})
          .ok());
  EXPECT_GT(c.EstimateBytes(cat), one);
}

TEST(ConfigurationTest, ViewsReferencing) {
  Configuration c;
  ViewDef v;
  v.definition = ParseView("SELECT l_orderkey FROM lineitem");
  v.referenced_tables = {"lineitem"};
  ASSERT_TRUE(c.AddView(v).ok());
  EXPECT_EQ(c.ViewsReferencing("lineitem").size(), 1u);
  EXPECT_EQ(c.ViewsReferencing("orders").size(), 0u);
}

}  // namespace
}  // namespace dta::catalog
