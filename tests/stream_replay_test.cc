// Golden end-to-end replay of the continuous tuning service: feed a fixed
// query capture through ContinuousTuner and byte-compare the full per-round
// delta output across thread counts, shard counts, chunking patterns, and
// kill-and-resume at every round boundary. The delta text is the service's
// user-visible output — string equality here is the determinism contract
// ("byte-identical rounds at any (threads x shards), resumable at any
// boundary") enforced at full strength.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dta/stream/continuous.h"
#include "dta/tenant_driver.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "storage/datagen.h"

namespace dta::tuner::stream {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as checkpoint_resume_test: two joinable tables
// with real data. Every service run gets a fresh server, as a restarted
// process would.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

// A capture whose workload shifts over time: early windows are point
// lookups, the middle windows turn join/aggregate heavy, and the tail
// concentrates on a different table — so successive rounds genuinely
// recommend different structures and the delta output has both `+` and `-`
// lines. Comments, ticks, a garbage SQL line, and a malformed directive are
// sprinkled in because a real capture has all four.
std::string GoldenCapture() {
  std::string c;
  c += "# golden capture: shifting shop workload\n";
  for (int i = 0; i < 6; ++i) {
    c += "SELECT o_price FROM orders WHERE o_id = 55\n";
    c += "@tick 250\n";
  }
  c += "not even sql ((\n";  // SQL parse error: counted, never an event
  for (int i = 0; i < 6; ++i) {
    c += "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
         "GROUP BY o_cust\n";
    c += "@tick 250\n";
  }
  c += "@tick oops\n";  // malformed directive: counted, skipped
  for (int i = 0; i < 6; ++i) {
    c += "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
         "GROUP BY o_cust\n";
    c += "@tick 250\n";
  }
  c += "\n";
  for (int i = 0; i < 6; ++i) {
    c += "SELECT i_qty FROM items WHERE i_part = 77\n";
    c += "@tick 250\n";
  }
  for (int i = 0; i < 6; ++i) {
    c += "SELECT i_part, SUM(i_qty) FROM items GROUP BY i_part\n";
    c += "@tick 250\n";
  }
  return c;
}

constexpr size_t kInterval = 6;   // events per round
constexpr uint64_t kRounds = 5;   // 30 events / 6

ContinuousTuner::Config BaseConfig(server::Server* server) {
  ContinuousTuner::Config config;
  config.server = server;
  config.options.num_threads = 1;
  config.retune_interval_events = kInterval;
  return config;
}

struct ServiceRun {
  std::string delta_text;
  uint64_t rounds = 0;
  std::string recommendation_xml;
};

// Runs the whole capture through a fresh service and returns its output.
ServiceRun RunService(ContinuousTuner::Config config,
                      const std::string& capture, size_t chunk = 0) {
  auto prod = MakeProduction();
  config.server = prod.get();
  ContinuousTuner tuner(std::move(config));
  EXPECT_TRUE(tuner.Init().ok());
  if (chunk == 0) {
    EXPECT_TRUE(tuner.Feed(capture).ok());
  } else {
    for (size_t i = 0; i < capture.size(); i += chunk) {
      EXPECT_TRUE(
          tuner.Feed(std::string_view(capture).substr(i, chunk)).ok());
    }
  }
  EXPECT_TRUE(tuner.Finish().ok());
  ServiceRun run;
  run.delta_text = tuner.delta_text();
  run.rounds = tuner.rounds();
  run.recommendation_xml =
      ConfigurationToXml(tuner.recommendation())->ToString();
  return run;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "dta_stream_" + name + ".log";
}

// ------------------------------------------------------------------- golden

TEST(StreamReplayTest, RoundsFireOnEventCadenceAndReportDeltas) {
  const ServiceRun run = RunService(BaseConfig(nullptr), GoldenCapture());
  EXPECT_EQ(run.rounds, kRounds);
  // Every round header present, in order.
  size_t pos = 0;
  for (uint64_t r = 1; r <= kRounds; ++r) {
    const std::string header = "== round " + std::to_string(r) + " ==";
    const size_t at = run.delta_text.find(header, pos);
    ASSERT_NE(at, std::string::npos) << "missing " << header << " in:\n"
                                     << run.delta_text;
    pos = at + header.size();
  }
  // The first round recommends something from nothing: at least one `+`.
  EXPECT_NE(run.delta_text.find("\n+ "), std::string::npos) << run.delta_text;
  // The workload shift must force at least one drop somewhere.
  EXPECT_NE(run.delta_text.find("\n- "), std::string::npos) << run.delta_text;
  // Error accounting: exactly the garbage SQL line plus the bad directive.
  EXPECT_NE(run.delta_text.find("parse_errors=2"), std::string::npos)
      << run.delta_text;
}

TEST(StreamReplayTest, DeltaOutputIsByteIdenticalAcrossThreadsAndShards) {
  const ServiceRun reference = RunService(BaseConfig(nullptr), GoldenCapture());
  ASSERT_EQ(reference.rounds, kRounds);

  struct Topology {
    int threads;
    int shards;
  };
  const Topology topologies[] = {{2, 1}, {4, 1}, {1, 2}, {3, 3}};
  for (const Topology& t : topologies) {
    ContinuousTuner::Config config = BaseConfig(nullptr);
    config.options.num_threads = t.threads;
    config.options.shards = t.shards;
    const ServiceRun run = RunService(std::move(config), GoldenCapture());
    EXPECT_EQ(reference.delta_text, run.delta_text)
        << "threads=" << t.threads << " shards=" << t.shards;
    EXPECT_EQ(reference.recommendation_xml, run.recommendation_xml)
        << "threads=" << t.threads << " shards=" << t.shards;
  }
}

TEST(StreamReplayTest, ChunkingNeverAffectsOutput) {
  const ServiceRun reference = RunService(BaseConfig(nullptr), GoldenCapture());
  for (const size_t chunk : {size_t{1}, size_t{7}, size_t{4096}}) {
    const ServiceRun run =
        RunService(BaseConfig(nullptr), GoldenCapture(), chunk);
    EXPECT_EQ(reference.delta_text, run.delta_text) << "chunk=" << chunk;
  }
}

TEST(StreamReplayTest, TimeCadenceFiresOnTicksOnly) {
  // 250ms per statement, retune every 1500ms of stream time: same windows
  // as the event cadence — and no real clock anywhere near the decision.
  ContinuousTuner::Config config = BaseConfig(nullptr);
  config.retune_interval_events = 0;
  config.retune_interval_ms = 1500;
  const ServiceRun run = RunService(std::move(config), GoldenCapture());
  EXPECT_GE(run.rounds, 4u);
  EXPECT_LE(run.rounds, 6u);
}

// ------------------------------------------------------- kill-resume sweep

// Kill the service at round boundary k (stop consuming input once k rounds
// completed), then resume from the delta log on a fresh server, re-feed the
// same capture, and require the combined delta output to equal the
// uninterrupted run's, byte for byte — for every k.
TEST(StreamReplayTest, KillAtEveryRoundBoundaryResumesBitIdentically) {
  const std::string capture = GoldenCapture();
  const ServiceRun reference = RunService(BaseConfig(nullptr), capture);
  ASSERT_EQ(reference.rounds, kRounds);

  for (uint64_t kill_after = 1; kill_after < kRounds; ++kill_after) {
    const std::string path =
        TempPath("kill_" + std::to_string(kill_after));
    std::remove(path.c_str());

    std::string combined;
    {
      auto prod = MakeProduction();
      ContinuousTuner::Config config = BaseConfig(prod.get());
      config.checkpoint_path = path;
      ContinuousTuner tuner(std::move(config));
      ASSERT_TRUE(tuner.Init().ok());
      tuner.set_max_rounds(kill_after);
      ASSERT_TRUE(tuner.Feed(capture).ok());
      EXPECT_EQ(tuner.rounds(), kill_after);
      combined = tuner.delta_text();
      // Process dies here: no Finish, no destructor cooperation needed —
      // the delta log already holds everything through round kill_after.
    }
    {
      auto prod = MakeProduction();  // fresh server, as after a restart
      ContinuousTuner::Config config = BaseConfig(prod.get());
      config.checkpoint_path = path;
      ContinuousTuner tuner(std::move(config));
      ASSERT_TRUE(tuner.Init().ok()) << "kill_after=" << kill_after;
      EXPECT_TRUE(tuner.resumed()) << "kill_after=" << kill_after;
      ASSERT_TRUE(tuner.Feed(capture).ok());
      ASSERT_TRUE(tuner.Finish().ok());
      EXPECT_EQ(tuner.rounds(), kRounds) << "kill_after=" << kill_after;
      combined += tuner.delta_text();
      EXPECT_EQ(ConfigurationToXml(tuner.recommendation())->ToString(),
                reference.recommendation_xml)
          << "kill_after=" << kill_after;
    }
    EXPECT_EQ(reference.delta_text, combined)
        << "kill_after=" << kill_after;
  }
}

// A kill-resume chain under a *different* topology each leg: determinism
// must hold not only per-run but across the resume seam.
TEST(StreamReplayTest, ResumeUnderDifferentTopologyStaysIdentical) {
  const std::string capture = GoldenCapture();
  const ServiceRun reference = RunService(BaseConfig(nullptr), capture);

  const std::string path = TempPath("topology_switch");
  std::remove(path.c_str());

  std::string combined;
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig(prod.get());
    config.options.num_threads = 1;
    config.checkpoint_path = path;
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    tuner.set_max_rounds(2);
    ASSERT_TRUE(tuner.Feed(capture).ok());
    combined = tuner.delta_text();
  }
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig(prod.get());
    config.options.num_threads = 4;  // topology change across the seam
    config.options.shards = 2;
    config.checkpoint_path = path;
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    EXPECT_TRUE(tuner.resumed());
    ASSERT_TRUE(tuner.Feed(capture).ok());
    ASSERT_TRUE(tuner.Finish().ok());
    combined += tuner.delta_text();
  }
  EXPECT_EQ(reference.delta_text, combined);
}

// Resume must refuse a log written under different result-affecting options
// — silently continuing would splice two different services together.
TEST(StreamReplayTest, ResumeRefusesMismatchedStreamParameters) {
  const std::string path = TempPath("fingerprint_guard");
  std::remove(path.c_str());
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig(prod.get());
    config.checkpoint_path = path;
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    tuner.set_max_rounds(1);
    ASSERT_TRUE(tuner.Feed(GoldenCapture()).ok());
    ASSERT_EQ(tuner.rounds(), 1u);
  }
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig(prod.get());
  config.checkpoint_path = path;
  config.max_templates = 7;  // result-affecting stream parameter
  ContinuousTuner tuner(std::move(config));
  const Status s = tuner.Init();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

// The delta sink sees exactly what delta_text() accumulates, chunked per
// round — the CLI streams rounds to stdout through it.
TEST(StreamReplayTest, DeltaSinkStreamsEachRound) {
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig(prod.get());
  std::vector<std::string> sunk;
  config.delta_sink = [&sunk](const std::string& d) { sunk.push_back(d); };
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());
  ASSERT_TRUE(tuner.Feed(GoldenCapture()).ok());
  ASSERT_TRUE(tuner.Finish().ok());
  ASSERT_EQ(sunk.size(), kRounds);
  std::string joined;
  for (const auto& d : sunk) joined += d;
  EXPECT_EQ(joined, tuner.delta_text());
}

// ------------------------------------------------------------ tenant fleet

// A fleet of continuous services under shared admission control: every
// tenant's per-round delta output must equal the standalone reference byte
// for byte — admission only delays calls, never changes what they return —
// and the merged metrics land under per-tenant namespaces.
TEST(StreamReplayTest, TenantFleetMatchesStandaloneByteForByte) {
  const std::string capture = GoldenCapture();
  ContinuousTuner::Config reference_config = BaseConfig(nullptr);
  reference_config.options.num_threads = 2;
  const ServiceRun reference = RunService(std::move(reference_config), capture);
  ASSERT_EQ(reference.rounds, kRounds);

  constexpr size_t kTenants = 3;
  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<server::Server*> server_ptrs;
  std::vector<TenantSpec> tenants;
  for (size_t i = 0; i < kTenants; ++i) {
    servers.push_back(MakeProduction());
    server_ptrs.push_back(servers.back().get());
    TenantSpec spec;
    spec.name = "shop" + std::to_string(i);
    spec.options.num_threads = 2;
    spec.weight = 1 + static_cast<double>(i);
    tenants.push_back(std::move(spec));
  }

  MetricsRegistry merged;
  TenantDriverOptions driver_options;
  driver_options.admission.total_capacity = 3;  // force real contention
  driver_options.admission.per_tenant_capacity = 2;
  driver_options.metrics = &merged;
  TenantDriver driver(driver_options);

  ContinuousFleetSpec fleet;
  fleet.capture = capture;
  fleet.retune_interval_events = kInterval;
  auto outcomes = driver.RunContinuous(tenants, server_ptrs, fleet);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), kTenants);
  for (size_t i = 0; i < kTenants; ++i) {
    const ContinuousTenantOutcome& out = (*outcomes)[i];
    EXPECT_EQ(out.name, tenants[i].name);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_EQ(out.rounds, kRounds) << out.name;
    EXPECT_EQ(out.delta_text, reference.delta_text) << out.name;
    EXPECT_EQ(ConfigurationToXml(out.recommendation)->ToString(),
              reference.recommendation_xml)
        << out.name;
  }
  // Each tenant's stream counters merged under its own namespace.
  const auto counters = merged.CounterValues();
  for (const TenantSpec& spec : tenants) {
    const std::string key = "tenant." + spec.name + ".stream.rounds";
    auto it = counters.find(key);
    ASSERT_NE(it, counters.end()) << key;
    EXPECT_EQ(it->second, kRounds) << key;
  }
}

// Per-tenant checkpoint logs: kill the whole fleet at a round boundary,
// resume every tenant from its own delta log, and the combined output still
// matches the reference for every tenant.
TEST(StreamReplayTest, TenantFleetResumesFromPerTenantLogs) {
  const std::string capture = GoldenCapture();
  const ServiceRun reference = RunService(BaseConfig(nullptr), capture);

  constexpr size_t kTenants = 2;
  const std::string prefix = TempPath("fleet");
  std::vector<TenantSpec> tenants;
  for (size_t i = 0; i < kTenants; ++i) {
    TenantSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.options.num_threads = 1;
    tenants.push_back(std::move(spec));
    std::remove((prefix + ".tenant." + tenants.back().name).c_str());
  }

  ContinuousFleetSpec fleet;
  fleet.capture = capture;
  fleet.retune_interval_events = kInterval;
  fleet.checkpoint_prefix = prefix;

  std::vector<std::string> combined(kTenants);
  {
    // First leg: each tenant runs alone (standalone tuner, same per-tenant
    // log path the driver would use) and is killed after two rounds.
    for (size_t i = 0; i < kTenants; ++i) {
      auto prod = MakeProduction();
      ContinuousTuner::Config config = BaseConfig(prod.get());
      config.checkpoint_path = prefix + ".tenant." + tenants[i].name;
      ContinuousTuner tuner(std::move(config));
      ASSERT_TRUE(tuner.Init().ok());
      tuner.set_max_rounds(2);
      ASSERT_TRUE(tuner.Feed(capture).ok());
      combined[i] = tuner.delta_text();
    }
  }
  // Second leg: the fleet resumes every tenant from its own log.
  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<server::Server*> server_ptrs;
  for (size_t i = 0; i < kTenants; ++i) {
    servers.push_back(MakeProduction());
    server_ptrs.push_back(servers.back().get());
  }
  TenantDriver driver(TenantDriverOptions{});
  auto outcomes = driver.RunContinuous(tenants, server_ptrs, fleet);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  for (size_t i = 0; i < kTenants; ++i) {
    const ContinuousTenantOutcome& out = (*outcomes)[i];
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
    EXPECT_TRUE(out.resumed) << out.name;
    EXPECT_EQ(out.rounds, kRounds) << out.name;
    EXPECT_EQ(combined[i] + out.delta_text, reference.delta_text) << out.name;
  }
}

// An oversized line poisons the stream: the service stops with an error
// instead of resynchronizing on garbage (mirrors the RPC FrameDecoder).
TEST(StreamReplayTest, OversizedLinePoisonsTheService) {
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig(prod.get());
  config.max_line_bytes = 64;
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());
  const std::string line(200, 'x');
  const Status s = tuner.Feed(line + "\n");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(tuner.stopped());
}

}  // namespace
}  // namespace dta::tuner::stream
