// DBA feedback biasing of the continuous tuning service: an accepted
// structure is pinned and survives a workload shift that would otherwise
// drop it; a rejected structure is quarantined out of the recommendation
// for the configured horizon and becomes re-eligible afterwards; unknown
// targets are counted and dropped; and the whole feedback state survives a
// kill/resume. Metrics assertions ride along: the stream.feedback.*
// counters must track exactly what was applied.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "dta/stream/continuous.h"
#include "dta/stream/feedback.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "storage/datagen.h"

namespace dta::tuner::stream {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

constexpr size_t kInterval = 5;

ContinuousTuner::Config BaseConfig() {
  ContinuousTuner::Config config;
  config.options.num_threads = 2;
  config.retune_interval_events = kInterval;
  config.quarantine_rounds = 2;
  // Recency decay, so a workload shift actually shifts the compressed
  // workload instead of accumulating history forever.
  config.decay = 0.5;
  return config;
}

// One round's worth of a stable orders-heavy window.
std::string OrdersWindow() {
  std::string w;
  w += "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
       "GROUP BY o_cust\n";
  w += "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
       "GROUP BY o_cust\n";
  w += "SELECT o_price FROM orders WHERE o_id = 55\n";
  w += "SELECT o_price FROM orders WHERE o_id = 55\n";
  w += "SELECT o_price FROM orders WHERE o_id = 120\n";
  return w;
}

// One round's worth of an items-only window (the workload shift).
std::string ItemsWindow() {
  std::string w;
  w += "SELECT i_qty FROM items WHERE i_part = 77\n";
  w += "SELECT i_qty FROM items WHERE i_part = 77\n";
  w += "SELECT i_part, SUM(i_qty) FROM items GROUP BY i_part\n";
  w += "SELECT i_part, SUM(i_qty) FROM items GROUP BY i_part\n";
  w += "SELECT i_qty FROM items WHERE i_part = 9\n";
  return w;
}

// First recommended structure that is an actual tuning candidate, plus its
// 1-based feedback position. Existing constraint-enforcing indexes ride
// along in every recommendation — they are not pool candidates, so they can
// be neither dropped by a workload shift nor quarantined; feedback tests
// must target a real candidate.
std::string FirstCandidateName(const Configuration& rec,
                               size_t* position = nullptr) {
  size_t pos = 1;
  for (const auto& ix : rec.indexes()) {
    if (!ix.constraint_enforcing) {
      if (position != nullptr) *position = pos;
      return ix.CanonicalName();
    }
    ++pos;
  }
  if (!rec.views().empty()) {
    if (position != nullptr) *position = pos;
    return rec.views().begin()->CanonicalName();
  }
  return "";
}

bool RecommendationContains(const Configuration& rec,
                            const std::string& name) {
  for (const auto& ix : rec.indexes()) {
    if (ix.CanonicalName() == name) return true;
  }
  for (const auto& v : rec.views()) {
    if (v.CanonicalName() == name) return true;
  }
  for (const auto& [table, scheme] : rec.table_partitioning()) {
    if ("partitioning:" + table == name) return true;
  }
  return false;
}

// ------------------------------------------------------------------ accept

TEST(StreamFeedbackTest, AcceptedStructureSurvivesWorkloadShift) {
  // Reference: without feedback, the shift to items drops every orders
  // structure — otherwise pinning would be vacuous here.
  std::string first_name;
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig();
    config.server = prod.get();
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
    ASSERT_EQ(tuner.rounds(), 1u);
    first_name = FirstCandidateName(tuner.recommendation());
    ASSERT_FALSE(first_name.empty());
    ASSERT_TRUE(tuner.Feed(ItemsWindow() + ItemsWindow() + ItemsWindow())
                    .ok());
    ASSERT_TRUE(tuner.Finish().ok());
    EXPECT_FALSE(RecommendationContains(tuner.recommendation(), first_name))
        << "the shift was supposed to drop " << first_name;
  }

  // Accepting that structure (by position) pins it: it joins the
  // user-specified configuration of every later round and survives the
  // identical shift.
  MetricsRegistry metrics;
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig();
  config.server = prod.get();
  config.metrics = &metrics;
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_EQ(tuner.rounds(), 1u);
  size_t position = 0;
  EXPECT_EQ(FirstCandidateName(tuner.recommendation(), &position),
            first_name);

  tuner.ConsumeFeedback("accept " + std::to_string(position) + "\n");
  ASSERT_TRUE(tuner.Feed(ItemsWindow() + ItemsWindow() + ItemsWindow()).ok());
  ASSERT_TRUE(tuner.Finish().ok());
  ASSERT_EQ(tuner.rounds(), 4u);
  EXPECT_TRUE(RecommendationContains(tuner.recommendation(), first_name));
  EXPECT_EQ(tuner.feedback().accepted(), 1u);
  EXPECT_EQ(metrics.GetCounter("stream.feedback.accepted")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("stream.feedback.rejected")->value(), 0u);
  // The delta text reports the pin from the accepting round on.
  EXPECT_NE(tuner.delta_text().find("pinned=1"), std::string::npos);
}

// ------------------------------------------------------------------ reject

TEST(StreamFeedbackTest, RejectedStructureIsQuarantinedThenReEligible) {
  MetricsRegistry metrics;
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig();  // quarantine_rounds = 2
  config.server = prod.get();
  config.metrics = &metrics;
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());

  // Round 1 under the stable window recommends something.
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_EQ(tuner.rounds(), 1u);
  const std::string name = FirstCandidateName(tuner.recommendation());
  ASSERT_FALSE(name.empty());

  // Reject it by name; rounds 2 and 3 run the *same* workload but must not
  // recommend it (the quarantine horizon covers both rounds).
  tuner.ConsumeFeedback("reject " + name + "\n");
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_EQ(tuner.rounds(), 2u);
  EXPECT_FALSE(RecommendationContains(tuner.recommendation(), name));
  EXPECT_FALSE(tuner.feedback().QuarantinedAt(2).empty());

  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_EQ(tuner.rounds(), 3u);
  EXPECT_FALSE(RecommendationContains(tuner.recommendation(), name));

  // Round 4: the horizon expired; the structure must re-earn its seat — and
  // under the unchanged workload it does.
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_TRUE(tuner.Finish().ok());
  ASSERT_EQ(tuner.rounds(), 4u);
  EXPECT_TRUE(tuner.feedback().QuarantinedAt(4).empty());
  EXPECT_TRUE(RecommendationContains(tuner.recommendation(), name));

  EXPECT_EQ(tuner.feedback().rejected(), 1u);
  EXPECT_EQ(metrics.GetCounter("stream.feedback.rejected")->value(), 1u);
  // The rejecting round reports the candidates it filtered.
  EXPECT_NE(tuner.delta_text().find("quarantined=1"), std::string::npos)
      << tuner.delta_text();
  // And the recommendation transition shows up as delta lines: dropped at
  // round 2, re-added at round 4.
  EXPECT_NE(tuner.delta_text().find("- " + name), std::string::npos);
  const size_t round4 = tuner.delta_text().find("== round 4 ==");
  ASSERT_NE(round4, std::string::npos);
  EXPECT_NE(tuner.delta_text().find("+ " + name, round4), std::string::npos);
}

// ----------------------------------------------------------------- unknown

TEST(StreamFeedbackTest, UnknownTargetsAreCountedAndDropped) {
  MetricsRegistry metrics;
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig();
  config.server = prod.get();
  config.metrics = &metrics;
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_EQ(tuner.rounds(), 1u);

  tuner.ConsumeFeedback(
      "accept 99\n"               // no such position
      "accept no_such_index\n"    // accepts need a resolvable definition
      "frobnicate everything\n"   // no such verb
      "reject by_name_is_fine\n"  // rejects work by name alone
      );
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_TRUE(tuner.Finish().ok());
  EXPECT_EQ(tuner.feedback().unknown(), 3u);
  EXPECT_EQ(tuner.feedback().rejected(), 1u);
  EXPECT_EQ(metrics.GetCounter("stream.feedback.unknown")->value(), 3u);
}

// Re-reading a growing feedback file is idempotent: the consumed-lines
// cursor skips everything already taken.
TEST(StreamFeedbackTest, FeedbackFileRereadsAreIdempotent) {
  FeedbackState state;
  state.Consume("reject idx_a\n");
  state.Consume("reject idx_a\nreject idx_b\n");
  state.Consume("reject idx_a\nreject idx_b\n");
  ASSERT_EQ(state.pending().size(), 2u);
  EXPECT_EQ(state.pending()[0].target, "idx_a");
  EXPECT_EQ(state.pending()[1].target, "idx_b");
  // An unterminated trailing line is not consumed — the writer may still be
  // appending it.
  state.Consume("reject idx_a\nreject idx_b\nreject idx_");
  EXPECT_EQ(state.pending().size(), 2u);
  state.Consume("reject idx_a\nreject idx_b\nreject idx_c\n");
  ASSERT_EQ(state.pending().size(), 3u);
  EXPECT_EQ(state.pending()[2].target, "idx_c");
}

// Round-tagged directives wait for their round.
TEST(StreamFeedbackTest, RoundTaggedDirectivesWaitForTheirRound) {
  auto prod = MakeProduction();
  ContinuousTuner::Config config = BaseConfig();
  config.server = prod.get();
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  const std::string name = FirstCandidateName(tuner.recommendation());
  ASSERT_FALSE(name.empty());

  // Tagged for round 3: round 2 must still recommend it.
  tuner.ConsumeFeedback("@3 reject " + name + "\n");
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_EQ(tuner.rounds(), 2u);
  EXPECT_TRUE(RecommendationContains(tuner.recommendation(), name));
  ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
  ASSERT_TRUE(tuner.Finish().ok());
  ASSERT_EQ(tuner.rounds(), 3u);
  EXPECT_FALSE(RecommendationContains(tuner.recommendation(), name));
}

// -------------------------------------------------------------- kill/resume

// Feedback state — the pin, the quarantine horizon, and the not-yet-applied
// pending directives — must survive a kill/resume with the identical
// round-by-round effect.
TEST(StreamFeedbackTest, FeedbackStateSurvivesKillAndResume) {
  const std::string path =
      ::testing::TempDir() + "dta_stream_feedback_resume.log";
  std::remove(path.c_str());
  const std::string capture =
      OrdersWindow() + OrdersWindow() + OrdersWindow() + OrdersWindow();

  // Uninterrupted reference with feedback applied between rounds 1 and 2.
  std::string reference_tail;
  std::string name;
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig();
    config.server = prod.get();
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    ASSERT_TRUE(tuner.Feed(OrdersWindow()).ok());
    name = FirstCandidateName(tuner.recommendation());
    tuner.ConsumeFeedback("reject " + name + "\n@4 reject extra_name\n");
    ASSERT_TRUE(
        tuner.Feed(OrdersWindow() + OrdersWindow() + OrdersWindow()).ok());
    ASSERT_TRUE(tuner.Finish().ok());
    ASSERT_EQ(tuner.rounds(), 4u);
    const size_t round2 = tuner.delta_text().find("== round 2 ==");
    ASSERT_NE(round2, std::string::npos);
    reference_tail = tuner.delta_text().substr(round2);
  }

  // Same service, checkpointed, killed right after consuming the feedback
  // (round boundary 1).
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig();
    config.server = prod.get();
    config.checkpoint_path = path;
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    tuner.set_max_rounds(1);
    ASSERT_TRUE(tuner.Feed(capture).ok());
    ASSERT_EQ(tuner.rounds(), 1u);
    tuner.ConsumeFeedback("reject " + name + "\n@4 reject extra_name\n");
    // The consumed-but-unapplied directives only reach the log at the next
    // round boundary — which the kill preempts. Re-reading the feedback
    // file after resume must re-consume them (the cursor checkpointed at 0
    // lines... no: the cursor checkpoints at the last boundary, so resume
    // re-reads both lines).
  }
  {
    auto prod = MakeProduction();
    ContinuousTuner::Config config = BaseConfig();
    config.server = prod.get();
    config.checkpoint_path = path;
    ContinuousTuner tuner(std::move(config));
    ASSERT_TRUE(tuner.Init().ok());
    EXPECT_TRUE(tuner.resumed());
    // The CLI re-reads the whole feedback file on resume; the cursor in the
    // checkpoint decides what is new.
    tuner.ConsumeFeedback("reject " + name + "\n@4 reject extra_name\n");
    ASSERT_TRUE(tuner.Feed(capture).ok());
    ASSERT_TRUE(tuner.Finish().ok());
    ASSERT_EQ(tuner.rounds(), 4u);
    EXPECT_EQ(tuner.delta_text(), reference_tail);
    // The quarantine from round 2 covered rounds 2 and 3; by round 4 the
    // structure re-earned its seat under the unchanged workload.
    EXPECT_TRUE(RecommendationContains(tuner.recommendation(), name));
  }
}

}  // namespace
}  // namespace dta::tuner::stream
