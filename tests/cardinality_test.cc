// Unit tests for cardinality/selectivity estimation and the cost model's
// qualitative properties.

#include <gtest/gtest.h>

#include <memory>

#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "sql/parser.h"
#include "stats/builder.h"
#include "storage/datagen.h"

namespace dta::optimizer {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;

class CardinalityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = std::make_unique<Env>();
    TableSchema t("t", {{"k", ColumnType::kInt, 8},     // unique
                        {"g", ColumnType::kInt, 8},     // 100 distinct
                        {"d", ColumnType::kString, 10},  // dates
                        {"x", ColumnType::kDouble, 8}});
    t.set_row_count(100000);
    t.SetPrimaryKey({"k"});
    TableSchema u("u", {{"fk", ColumnType::kInt, 8},
                        {"y", ColumnType::kDouble, 8}});
    u.set_row_count(400000);
    catalog::Database db("db");
    ASSERT_TRUE(db.AddTable(t).ok());
    ASSERT_TRUE(db.AddTable(u).ok());
    ASSERT_TRUE(env_->catalog.AddDatabase(std::move(db)).ok());

    storage::TableGenSpec tspec;
    tspec.schema = t;
    tspec.column_specs = {storage::ColumnSpec::Sequential(),
                          storage::ColumnSpec::UniformInt(1, 100),
                          storage::ColumnSpec::Date("2000-01-01", 1000),
                          storage::ColumnSpec::UniformReal(0, 1)};
    tspec.rows = 100000;
    Random rng(17);
    auto tdata = storage::GenerateTable(tspec, &rng);
    ASSERT_TRUE(tdata.ok());
    for (auto cols : {std::vector<std::string>{"k"},
                      std::vector<std::string>{"g"},
                      std::vector<std::string>{"d"},
                      std::vector<std::string>{"g", "d"}}) {
      auto s = stats::BuildFromData("db", t, *tdata, cols);
      ASSERT_TRUE(s.ok());
      env_->stats.Put(std::move(s).value());
    }
    storage::TableGenSpec uspec;
    uspec.schema = u;
    uspec.column_specs = {storage::ColumnSpec::UniformInt(1, 100000),
                          storage::ColumnSpec::UniformReal(0, 1)};
    uspec.rows = 400000;
    auto udata = storage::GenerateTable(uspec, &rng);
    ASSERT_TRUE(udata.ok());
    auto s = stats::BuildFromData("db", u, *udata, {"fk"});
    ASSERT_TRUE(s.ok());
    env_->stats.Put(std::move(s).value());
  }
  static void TearDownTestSuite() {
    env_.reset();
  }

  struct Env {
    catalog::Catalog catalog;
    stats::StatsManager stats;
  };
  static std::unique_ptr<Env> env_;

  // Binds a query and returns estimator machinery bound to it. The
  // statement is kept alive via the returned holder.
  struct Holder {
    sql::Statement stmt;
    BoundQuery bound;
    std::unique_ptr<StatsProvider> provider;
    std::unique_ptr<CardinalityEstimator> est;
  };
  static Holder Make(const char* text) {
    Holder h{.stmt = std::move(sql::ParseStatement(text)).value()};
    auto bound = BindSelect(h.stmt.select(), env_->catalog);
    EXPECT_TRUE(bound.ok()) << text;
    h.bound = std::move(bound).value();
    h.provider = std::make_unique<StatsProvider>(&env_->stats);
    h.est = std::make_unique<CardinalityEstimator>(h.bound, *h.provider);
    return h;
  }
};

std::unique_ptr<CardinalityTest::Env> CardinalityTest::env_;

TEST_F(CardinalityTest, EqualityOnUniqueKeyIsOneRow) {
  auto h = Make("SELECT x FROM t WHERE k = 500");
  EXPECT_NEAR(h.est->AtomSelectivity(0) * 100000, 1.0, 3.0);
}

TEST_F(CardinalityTest, EqualityOnLowCardinalityColumn) {
  auto h = Make("SELECT x FROM t WHERE g = 50");
  EXPECT_NEAR(h.est->AtomSelectivity(0), 0.01, 0.005);
}

TEST_F(CardinalityTest, RangeSelectivityTracksFraction) {
  // ~30% of dates fall in the first 300 of 1000 days.
  auto h = Make("SELECT x FROM t WHERE d < '2000-10-27'");
  EXPECT_NEAR(h.est->AtomSelectivity(0), 0.3, 0.08);
}

TEST_F(CardinalityTest, InListSumsEqualities) {
  auto h1 = Make("SELECT x FROM t WHERE g IN (1, 2, 3)");
  auto h2 = Make("SELECT x FROM t WHERE g = 1");
  EXPECT_NEAR(h1.est->AtomSelectivity(0),
              3 * h2.est->AtomSelectivity(0), 0.01);
}

TEST_F(CardinalityTest, NotEqualIsComplement) {
  auto eq = Make("SELECT x FROM t WHERE g = 7");
  auto ne = Make("SELECT x FROM t WHERE g <> 7");
  EXPECT_NEAR(eq.est->AtomSelectivity(0) + ne.est->AtomSelectivity(0), 1.0,
              0.01);
}

TEST_F(CardinalityTest, ConjunctionBackoffBetweenBounds) {
  auto h = Make("SELECT x FROM t WHERE g = 5 AND d < '2000-06-01'");
  double s_and = h.est->FilterSelectivity({0, 1});
  double s0 = h.est->AtomSelectivity(0);
  double s1 = h.est->AtomSelectivity(1);
  // Between full independence and the most selective atom alone.
  EXPECT_GE(s_and, s0 * s1 - 1e-9);
  EXPECT_LE(s_and, std::min(s0, s1) + 1e-9);
}

TEST_F(CardinalityTest, JoinSelectivityFromDistinct) {
  auto h = Make("SELECT x FROM t, u WHERE k = fk");
  ASSERT_EQ(h.bound.join_atoms.size(), 1u);
  // 1/max(d_k, d_fk) with d_k = 100000.
  EXPECT_NEAR(h.est->JoinSelectivity(h.bound.join_atoms[0]), 1.0 / 100000,
              0.3 / 100000);
}

TEST_F(CardinalityTest, GroupCardinalityUsesMultiColumnDensity) {
  auto h = Make("SELECT g, d, COUNT(*) FROM t GROUP BY g, d");
  double groups = h.est->GroupCardinality(h.bound.group_by, 100000);
  // (g, d) statistics exist: ~100 * 1000 combos capped by observed density.
  EXPECT_GT(groups, 10000);
  EXPECT_LE(groups, 100000);
}

TEST_F(CardinalityTest, GroupCardinalityCappedByInputRows) {
  auto h = Make("SELECT g, COUNT(*) FROM t GROUP BY g");
  EXPECT_LE(h.est->GroupCardinality(h.bound.group_by, 40.0), 40.0);
}

TEST_F(CardinalityTest, PartitionFractionCounts) {
  catalog::PartitionScheme scheme;
  scheme.column = "g";
  scheme.boundaries = {sql::Value::Int(25), sql::Value::Int(50),
                       sql::Value::Int(75)};  // 4 partitions
  {
    auto h = Make("SELECT x FROM t WHERE g = 30");
    int touched = 0;
    double f = h.est->PartitionFraction(
        0, scheme, h.bound.filters_by_table[0], &touched);
    EXPECT_EQ(touched, 1);
    EXPECT_DOUBLE_EQ(f, 0.25);
  }
  {
    auto h = Make("SELECT x FROM t WHERE g BETWEEN 30 AND 60");
    int touched = 0;
    h.est->PartitionFraction(0, scheme, h.bound.filters_by_table[0],
                             &touched);
    EXPECT_EQ(touched, 2);  // [25,50) and [50,75)
  }
  {
    auto h = Make("SELECT x FROM t WHERE g < 20");
    int touched = 0;
    h.est->PartitionFraction(0, scheme, h.bound.filters_by_table[0],
                             &touched);
    EXPECT_EQ(touched, 1);
  }
  {
    auto h = Make("SELECT x FROM t WHERE g IN (10, 60)");
    int touched = 0;
    h.est->PartitionFraction(0, scheme, h.bound.filters_by_table[0],
                             &touched);
    EXPECT_EQ(touched, 2);
  }
  {
    auto h = Make("SELECT x FROM t WHERE x < 0.5");  // not the scheme column
    int touched = 0;
    double f = h.est->PartitionFraction(
        0, scheme, h.bound.filters_by_table[0], &touched);
    EXPECT_EQ(touched, 4);
    EXPECT_DOUBLE_EQ(f, 1.0);
  }
}

// ------------------------------------------------------------- cost model

TEST(CostModelTest, ScanGrowsWithPages) {
  CostModel cm{HardwareParams()};
  EXPECT_LT(cm.ScanCost(100, 1000, 1e6), cm.ScanCost(1000, 10000, 1e7));
}

TEST(CostModelTest, CachedIoIsCheaper) {
  HardwareParams small;
  small.memory_mb = 64;
  HardwareParams big;
  big.memory_mb = 65536;
  double bytes = 8e9;  // 8 GB object
  EXPECT_GT(CostModel(small).ScanCost(1e6, 1e7, bytes),
            CostModel(big).ScanCost(1e6, 1e7, bytes));
}

TEST(CostModelTest, ParallelismHelpsLargeInputsOnly) {
  HardwareParams one;
  one.cpu_count = 1;
  HardwareParams many;
  many.cpu_count = 32;
  // Small input: below the parallelism threshold, same cost.
  EXPECT_DOUBLE_EQ(CostModel(one).HashAggCost(1000, 10),
                   CostModel(many).HashAggCost(1000, 10));
  // Large input: many cores win.
  EXPECT_GT(CostModel(one).HashAggCost(5e6, 1000),
            CostModel(many).HashAggCost(5e6, 1000));
}

TEST(CostModelTest, SeekCheaperThanScanForSelectiveAccess) {
  CostModel cm{HardwareParams()};
  double pages = 10000, bytes = pages * 8192;
  double seek = cm.SeekCost(/*leaf=*/10, /*matched=*/100, /*lookups=*/100,
                            bytes, bytes);
  double scan = cm.ScanCost(pages, 1e6, bytes);
  EXPECT_LT(seek, scan);
}

TEST(CostModelTest, SortSpillsBeyondMemory) {
  HardwareParams hw;
  hw.memory_mb = 16;
  CostModel cm(hw);
  double in_memory = cm.SortCost(10000, 100);
  double spilled = cm.SortCost(10000000, 100);
  EXPECT_GT(spilled, in_memory * 100);
}

TEST(CostModelTest, ViewMaintenanceGrowsWithJoinedTables) {
  CostModel cm{HardwareParams()};
  EXPECT_GT(cm.ViewMaintenanceCost(10, 1000, 4),
            cm.ViewMaintenanceCost(10, 1000, 1));
}

}  // namespace
}  // namespace dta::optimizer
