// Integration tests for candidate generation, the cost service, enumeration
// and end-to-end tuning sessions (including the production/test-server
// scenario, user-specified configurations, XML I/O, and baselines).

#include <gtest/gtest.h>

#include <memory>

#include "common/strings.h"
#include "dta/candidates.h"
#include "dta/cost_service.h"
#include "dta/enumeration.h"
#include "dta/itw_baseline.h"
#include "dta/staged_baseline.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Builds a production server with two joinable tables and real data.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  // Constraint-enforcing PK index (part of the raw configuration).
  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SelectWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

sql::Statement Q(const std::string& text) {
  auto r = sql::ParseStatement(text);
  EXPECT_TRUE(r.ok()) << text;
  return std::move(r).value();
}

// ------------------------------------------------------------ candidates

TEST(CandidateGenTest, IndexCandidatesForPredicates) {
  auto prod = MakeProduction();
  auto groups = InterestingColumnGroups::Unrestricted();
  TuningOptions opts;
  auto cands = GenerateCandidatesForStatement(
      Q("SELECT o_price FROM orders WHERE o_cust = 5 AND o_date < "
        "'1995-01-01'"),
      prod.get(), groups, opts);
  ASSERT_TRUE(cands.ok()) << cands.status().ToString();
  ASSERT_FALSE(cands->empty());
  bool has_key_index = false, has_covering = false, has_clustered = false,
       has_partitioning = false;
  for (const auto& c : *cands) {
    if (c.kind == Candidate::Kind::kIndex) {
      if (c.index.clustered) has_clustered = true;
      if (!c.index.included_columns.empty()) has_covering = true;
      if (!c.index.key_columns.empty() &&
          c.index.key_columns[0] == "o_cust") {
        has_key_index = true;
      }
      EXPECT_GT(c.bytes + (c.index.clustered ? 1 : 0), 0u) << c.name;
    }
    if (c.kind == Candidate::Kind::kTablePartitioning) {
      has_partitioning = true;
      EXPECT_GT(c.scheme.boundaries.size(), 0u);
    }
  }
  EXPECT_TRUE(has_key_index);
  EXPECT_TRUE(has_covering);
  EXPECT_TRUE(has_clustered);
  EXPECT_TRUE(has_partitioning);
}

TEST(CandidateGenTest, ViewCandidatesForAggregateJoin) {
  auto prod = MakeProduction();
  auto groups = InterestingColumnGroups::Unrestricted();
  TuningOptions opts;
  auto cands = GenerateCandidatesForStatement(
      Q("SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
        "GROUP BY o_cust"),
      prod.get(), groups, opts);
  ASSERT_TRUE(cands.ok());
  int views = 0;
  for (const auto& c : *cands) {
    if (c.kind == Candidate::Kind::kView) {
      ++views;
      EXPECT_GT(c.view.estimated_rows, 0);
      EXPECT_EQ(c.view.referenced_tables.size(), 2u);
    }
  }
  EXPECT_GE(views, 1);
}

TEST(CandidateGenTest, FeatureSetRestrictionsHonored) {
  auto prod = MakeProduction();
  auto groups = InterestingColumnGroups::Unrestricted();
  TuningOptions opts = TuningOptions::IndexesOnly();
  auto cands = GenerateCandidatesForStatement(
      Q("SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
        "AND o_date < '1995-01-01' GROUP BY o_cust"),
      prod.get(), groups, opts);
  ASSERT_TRUE(cands.ok());
  for (const auto& c : *cands) {
    EXPECT_EQ(c.kind, Candidate::Kind::kIndex) << c.name;
  }
}

TEST(CandidateGenTest, InterestingGroupsPruneCandidates) {
  auto prod = MakeProduction();
  InterestingColumnGroups groups;  // empty and restricted: admits nothing
  TuningOptions opts;
  auto cands = GenerateCandidatesForStatement(
      Q("SELECT o_price FROM orders WHERE o_cust = 5"), prod.get(), groups,
      opts);
  ASSERT_TRUE(cands.ok());
  for (const auto& c : *cands) {
    EXPECT_NE(c.kind, Candidate::Kind::kIndex);
  }
}

TEST(CandidateGenTest, DmlCandidates) {
  auto prod = MakeProduction();
  auto groups = InterestingColumnGroups::Unrestricted();
  TuningOptions opts;
  auto cands = GenerateCandidatesForStatement(
      Q("UPDATE orders SET o_price = 1 WHERE o_cust = 9"), prod.get(),
      groups, opts);
  ASSERT_TRUE(cands.ok());
  ASSERT_EQ(cands->size(), 1u);
  EXPECT_EQ((*cands)[0].index.key_columns,
            (std::vector<std::string>{"o_cust"}));
  // INSERTs yield no candidates.
  auto ins = GenerateCandidatesForStatement(
      Q("INSERT INTO items VALUES (1, 2, 3.0)"), prod.get(), groups, opts);
  ASSERT_TRUE(ins.ok());
  EXPECT_TRUE(ins->empty());
}

// ----------------------------------------------------------- cost service

TEST(CostServiceTest, CachesByRelevantStructures) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();
  CostService costs(prod.get(), nullptr, &w);

  Configuration raw;
  ASSERT_TRUE(costs.WorkloadCost(raw).ok());
  size_t calls_after_first = costs.whatif_calls();
  EXPECT_EQ(calls_after_first, w.size());
  // Same configuration: fully cached.
  ASSERT_TRUE(costs.WorkloadCost(raw).ok());
  EXPECT_EQ(costs.whatif_calls(), calls_after_first);

  // Adding an items-only index re-prices only the statements touching
  // items (the join and the i_part query).
  Configuration with_index = raw;
  ASSERT_TRUE(with_index
                  .AddIndex(IndexDef{.table = "items",
                                     .key_columns = {"i_part"}})
                  .ok());
  ASSERT_TRUE(costs.WorkloadCost(with_index).ok());
  EXPECT_EQ(costs.whatif_calls(), calls_after_first + 2);
}

TEST(CostServiceTest, CollectsMissingStats) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();
  CostService costs(prod.get(), nullptr, &w);
  ASSERT_TRUE(costs.WorkloadCost(Configuration()).ok());
  EXPECT_FALSE(costs.missing_stats().empty());
}

// ------------------------------------------------------------ enumeration

TEST(EnumerationTest, PicksBeneficialCandidates) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();
  CostService costs(prod.get(), nullptr, &w);
  std::vector<Candidate> pool;
  pool.push_back(Candidate::MakeIndex(
      IndexDef{.table = "orders", .key_columns = {"o_id"},
               .included_columns = {"o_price"}},
      prod->catalog()));
  pool.push_back(Candidate::MakeIndex(
      IndexDef{.table = "items", .key_columns = {"i_part"},
               .included_columns = {"i_qty"}},
      prod->catalog()));
  TuningOptions opts;
  auto r = EnumerateConfiguration(&costs, pool, Configuration(), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->chosen.size(), 2u);  // both clearly help
  auto base_cost = costs.WorkloadCost(Configuration());
  ASSERT_TRUE(base_cost.ok());
  EXPECT_LT(r->cost, *base_cost);
}

TEST(EnumerationTest, StorageBoundLimitsSelection) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();
  CostService costs(prod.get(), nullptr, &w);
  std::vector<Candidate> pool;
  pool.push_back(Candidate::MakeIndex(
      IndexDef{.table = "orders", .key_columns = {"o_id"},
               .included_columns = {"o_price"}},
      prod->catalog()));
  pool.push_back(Candidate::MakeIndex(
      IndexDef{.table = "items", .key_columns = {"i_part"},
               .included_columns = {"i_qty"}},
      prod->catalog()));
  TuningOptions opts;
  opts.storage_bytes = std::min(pool[0].bytes, pool[1].bytes) +
                       std::max(pool[0].bytes, pool[1].bytes) / 2;
  auto r = EnumerateConfiguration(&costs, pool, Configuration(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->chosen.size(), 1u);  // only one fits

  TuningOptions tight;
  tight.storage_bytes = 1;  // nothing fits
  auto r2 = EnumerateConfiguration(&costs, pool, Configuration(), tight);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->chosen.empty());
}

TEST(EnumerationTest, AlignmentForcesIdenticalPartitioning) {
  auto prod = MakeProduction();
  workload::Workload w = SelectWorkload();
  CostService costs(prod.get(), nullptr, &w);

  catalog::PartitionScheme scheme;
  scheme.column = "o_date";
  scheme.boundaries = {sql::Value::String("1994-09-01"),
                       sql::Value::String("1995-06-01")};
  std::vector<Candidate> pool;
  pool.push_back(
      Candidate::MakePartitioning("shop", "orders", scheme));
  pool.push_back(Candidate::MakeIndex(
      IndexDef{.table = "orders", .key_columns = {"o_id"},
               .included_columns = {"o_price"}},
      prod->catalog()));
  TuningOptions opts;
  opts.require_alignment = true;
  auto r = EnumerateConfiguration(&costs, pool, Configuration(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->configuration.IsFullyAligned())
      << r->configuration.Fingerprint();
}

// --------------------------------------------------------------- session

TEST(TuningSessionTest, EndToEndImprovesWorkload) {
  auto prod = MakeProduction();
  TuningOptions opts;
  TuningSession session(prod.get(), opts);
  auto r = session.Tune(SelectWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->ImprovementPercent(), 30) << r->report.ToText();
  EXPECT_GT(r->recommendation.StructureCount(), 0u);
  EXPECT_GT(r->whatif_calls, 0u);
  EXPECT_GT(r->stats_created, 0u);
  EXPECT_EQ(r->events_total, 5u);
  // The report is consistent with the headline numbers.
  EXPECT_NEAR(r->report.ImprovementPercent(), r->ImprovementPercent(), 1e-6);
  EXPECT_FALSE(r->report.structure_usage.empty());
}

TEST(TuningSessionTest, UpdateHeavyWorkloadGetsNoHarmfulStructures) {
  auto prod = MakeProduction();
  // Nearly pure modifications; reads are trivial full scans.
  std::string script;
  for (int i = 0; i < 30; ++i) {
    script += StrFormat(
        "UPDATE items SET i_qty = %d WHERE i_oid = %d;"
        "INSERT INTO items VALUES (%d, %d, 1.5);",
        i % 7, i * 11 + 1, 100000 + i, i % 50);
  }
  auto w = workload::Workload::FromScript(script);
  ASSERT_TRUE(w.ok());
  TuningOptions opts;
  TuningSession session(prod.get(), opts);
  auto r = session.Tune(*w);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Whatever is recommended must not be worse than doing nothing.
  EXPECT_GE(r->ImprovementPercent(), -1e-9);
}

TEST(TuningSessionTest, UserSpecifiedConfigurationIsHonored) {
  auto prod = MakeProduction();
  TuningOptions opts;
  catalog::PartitionScheme by_month;
  by_month.column = "o_date";
  by_month.boundaries = {sql::Value::String("1995-01-01")};
  opts.user_specified.SetTablePartitioning("orders", by_month);
  ASSERT_TRUE(opts.user_specified
                  .AddIndex(IndexDef{.table = "items",
                                     .key_columns = {"i_oid"}})
                  .ok());
  TuningSession session(prod.get(), opts);
  auto r = session.Tune(SelectWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const catalog::PartitionScheme* scheme =
      r->recommendation.FindTablePartitioning("orders");
  ASSERT_NE(scheme, nullptr);
  EXPECT_TRUE(*scheme == by_month);
  EXPECT_TRUE(r->recommendation.ContainsStructure(
      IndexDef{.table = "items", .key_columns = {"i_oid"}}.CanonicalName()));
}

TEST(TuningSessionTest, EvaluateConfigurationMode) {
  auto prod = MakeProduction();
  TuningSession session(prod.get(), TuningOptions());
  // Propose an addition on top of the current design (a configuration is a
  // complete physical design; omitting current indexes would drop them).
  Configuration proposal = prod->current_configuration();
  ASSERT_TRUE(proposal
                  .AddIndex(IndexDef{.table = "items",
                                     .key_columns = {"i_part"},
                                     .included_columns = {"i_qty"}})
                  .ok());
  auto r = session.EvaluateConfiguration(SelectWorkload(), proposal);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->ChangePercent(), 0);  // the index helps the i_part query
  EXPECT_EQ(r->report.statements.size(), 5u);
}

TEST(TuningSessionTest, TestServerModeShiftsOverhead) {
  auto prod = MakeProduction();
  auto test = server::Server::FromMetadataScript(
      prod->ScriptMetadata(), "test", optimizer::HardwareParams::TestClass());
  ASSERT_TRUE(test.ok()) << test.status().ToString();

  prod->ResetOverhead();
  TuningSession session(prod.get(), TuningOptions());
  ASSERT_TRUE(session.UseTestServer(test->get()).ok());
  auto r = session.Tune(SelectWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->ImprovementPercent(), 30);

  // Production only paid for statistics creation; the what-if load landed
  // on the test server.
  EXPECT_GT((*test)->whatif_call_count(), 0u);
  EXPECT_EQ(prod->whatif_call_count(), 0u);
  EXPECT_GT((*test)->overhead_ms(), 0.0);
  EXPECT_NEAR(prod->overhead_ms(), r->stats_creation_ms,
              r->stats_creation_ms * 0.01 + 1e-6);
}

TEST(TuningSessionTest, TestServerRecommendationMatchesLocalTuning) {
  auto prod1 = MakeProduction();
  auto prod2 = MakeProduction();
  TuningSession local(prod1.get(), TuningOptions());
  auto r_local = local.Tune(SelectWorkload());
  ASSERT_TRUE(r_local.ok());

  auto test = server::Server::FromMetadataScript(
      prod2->ScriptMetadata(), "test",
      optimizer::HardwareParams::TestClass());
  ASSERT_TRUE(test.ok());
  TuningSession remote(prod2.get(), TuningOptions());
  ASSERT_TRUE(remote.UseTestServer(test->get()).ok());
  auto r_remote = remote.Tune(SelectWorkload());
  ASSERT_TRUE(r_remote.ok());

  // Hardware simulation makes the test-server recommendation equivalent.
  EXPECT_EQ(r_local->recommendation.Fingerprint(),
            r_remote->recommendation.Fingerprint());
  EXPECT_NEAR(r_local->ImprovementPercent(),
              r_remote->ImprovementPercent(), 1.0);
}

TEST(TuningSessionTest, TimeLimitShortCircuits) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.time_limit_ms = 0.0;  // expire immediately
  TuningSession session(prod.get(), opts);
  auto r = session.Tune(SelectWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->hit_time_limit);
}

TEST(TuningSessionTest, FasterWhenFeaturesDisabled) {
  auto prod = MakeProduction();
  TuningOptions idx_only = TuningOptions::IndexesOnly();
  TuningSession session(prod.get(), idx_only);
  auto r = session.Tune(SelectWorkload());
  ASSERT_TRUE(r.ok());
  for (const auto& v : r->recommendation.views()) {
    FAIL() << "unexpected view " << v.CanonicalName();
  }
  EXPECT_TRUE(r->recommendation.table_partitioning().empty());
}

// ------------------------------------------------------------- baselines

TEST(BaselineTest, ItwTunesWithoutPartitioning) {
  auto prod = MakeProduction();
  auto r = TuneWithItw(prod.get(), SelectWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->recommendation.table_partitioning().empty());
  EXPECT_GT(r->ImprovementPercent(), 20);
}

TEST(BaselineTest, StagedRunsAllStagesAndLocksChoices) {
  auto prod = MakeProduction();
  auto r = TuneStaged(prod.get(), SelectWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Stage outputs accumulate into the final configuration.
  EXPECT_GE(r->final_configuration.StructureCount(),
            r->index_stage.recommendation.StructureCount());
  EXPECT_GE(r->ImprovementPercent(), 0);
}

TEST(BaselineTest, IntegratedAtLeastAsGoodAsStaged) {
  auto prod = MakeProduction();
  auto staged = TuneStaged(prod.get(), SelectWorkload());
  ASSERT_TRUE(staged.ok());
  TuningSession session(prod.get(), TuningOptions());
  auto integrated = session.Tune(SelectWorkload());
  ASSERT_TRUE(integrated.ok());
  EXPECT_GE(integrated->ImprovementPercent() + 1.0,
            staged->ImprovementPercent());
}

// ------------------------------------------------------------------- XML

TEST(XmlSchemaTest, ConfigurationRoundTrip) {
  Configuration config;
  catalog::PartitionScheme scheme;
  scheme.column = "o_date";
  scheme.boundaries = {sql::Value::String("1995-01-01"),
                       sql::Value::String("1996-01-01")};
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_cust", "o_date"},
                                     .included_columns = {"o_price"},
                                     .partitioning = scheme})
                  .ok());
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "items",
                                     .key_columns = {"i_oid"},
                                     .clustered = true})
                  .ok());
  catalog::ViewDef v;
  auto def = sql::ParseStatement(
      "SELECT o_cust, COUNT(*) AS c FROM orders GROUP BY o_cust");
  ASSERT_TRUE(def.ok());
  v.definition = std::make_shared<sql::SelectStatement>(def->select().Clone());
  v.referenced_tables = {"orders"};
  v.estimated_rows = 3000;
  ASSERT_TRUE(config.AddView(v).ok());
  config.SetTablePartitioning("orders", scheme);

  auto xml_elem = ConfigurationToXml(config);
  auto parsed = ConfigurationFromXml(*xml_elem);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Fingerprint(), config.Fingerprint());
}

TEST(XmlSchemaTest, NumericBoundariesRoundTrip) {
  Configuration config;
  catalog::PartitionScheme scheme;
  scheme.column = "k";
  scheme.boundaries = {sql::Value::Int(100), sql::Value::Double(2.5)};
  config.SetTablePartitioning("t", scheme);
  auto parsed = ConfigurationFromXml(*ConfigurationToXml(config));
  ASSERT_TRUE(parsed.ok());
  const auto* s = parsed->FindTablePartitioning("t");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->boundaries[0].type(), sql::ValueType::kInt);
  EXPECT_EQ(s->boundaries[1].type(), sql::ValueType::kDouble);
  EXPECT_EQ(parsed->Fingerprint(), config.Fingerprint());
}

TEST(XmlSchemaTest, TuningInputRoundTrip) {
  TuningInput input;
  input.server_name = "prod01";
  input.workload = SelectWorkload();
  input.options.require_alignment = true;
  input.options.storage_bytes = 123456789;
  input.options.tune_materialized_views = false;
  ASSERT_TRUE(input.options.user_specified
                  .AddIndex(IndexDef{.table = "items",
                                     .key_columns = {"i_oid"}})
                  .ok());

  std::string xml_text = TuningInputToXml(input);
  auto parsed = TuningInputFromXml(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->server_name, "prod01");
  EXPECT_EQ(parsed->workload.size(), input.workload.size());
  EXPECT_TRUE(parsed->options.require_alignment);
  EXPECT_FALSE(parsed->options.tune_materialized_views);
  ASSERT_TRUE(parsed->options.storage_bytes.has_value());
  EXPECT_EQ(*parsed->options.storage_bytes, 123456789u);
  EXPECT_EQ(parsed->options.user_specified.Fingerprint(),
            input.options.user_specified.Fingerprint());
}

TEST(XmlSchemaTest, FullOutputDocument) {
  auto prod = MakeProduction();
  TuningSession session(prod.get(), TuningOptions());
  TuningInput input;
  input.server_name = "prod";
  input.workload = SelectWorkload();
  auto r = session.Tune(input.workload);
  ASSERT_TRUE(r.ok());
  std::string doc =
      TuningOutputToXml(input, r->recommendation, r->report);
  EXPECT_NE(doc.find("<DTAXML>"), std::string::npos);
  auto rec = RecommendationFromXml(doc);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->Fingerprint(), r->recommendation.Fingerprint());
}

TEST(XmlSchemaTest, ParseErrors) {
  EXPECT_FALSE(TuningInputFromXml("<NotDta/>").ok());
  EXPECT_FALSE(TuningInputFromXml("<DTAXML><Input/></DTAXML>").ok());
  EXPECT_FALSE(RecommendationFromXml("<DTAXML><Input/></DTAXML>").ok());
  xml::Element bad_index("Configuration");
  bad_index.AddChild("Index")->SetAttr("Table", "t");  // no key columns
  EXPECT_FALSE(ConfigurationFromXml(bad_index).ok());
}

}  // namespace
}  // namespace dta::tuner
