// Edge-case tests for the DTR1 frame codec and for how the socket transport
// reacts to a misbehaving peer. The invariant under test everywhere: a
// malformed byte stream produces a clean transport error — which the
// completion queue turns into a requeue on another shard — and never a hang.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "dta/rpc/frame.h"
#include "dta/rpc/socket_util.h"
#include "dta/rpc/transport.h"
#include "dta/rpc/wire.h"
#include "stats/statistics.h"

namespace dta::rpc {
namespace {

// --------------------------------------------------------------- helpers

std::string FeedAll(FrameDecoder* decoder, const std::string& bytes) {
  auto s = decoder->Feed(bytes.data(), bytes.size());
  return s.ok() ? "" : s.ToString();
}

// Hand-crafts a 20-byte header so tests can lie about every field.
std::string RawHeader(uint32_t magic, uint32_t length, uint32_t type,
                      uint64_t request_id) {
  std::string out(kFrameHeaderBytes, '\0');
  auto put32 = [&out](size_t at, uint32_t v) {
    for (int i = 0; i < 4; ++i) out[at + i] = char((v >> (8 * i)) & 0xff);
  };
  put32(0, magic);
  put32(4, length);
  put32(8, type);
  put32(12, static_cast<uint32_t>(request_id));
  put32(16, static_cast<uint32_t>(request_id >> 32));
  return out;
}

// ----------------------------------------------------------- happy paths

TEST(FrameCodecTest, RoundTripsEveryKnownType) {
  FrameDecoder decoder;
  std::string stream;
  std::vector<Frame> sent;
  uint64_t id = 100;
  for (uint32_t raw = 1; raw <= 7; ++raw) {
    ASSERT_TRUE(IsKnownFrameType(raw)) << raw;
    Frame f{static_cast<FrameType>(raw), id++,
            StrFormat("payload-%u", raw)};
    stream += EncodeFrame(f);
    sent.push_back(std::move(f));
  }
  EXPECT_FALSE(IsKnownFrameType(0));
  EXPECT_FALSE(IsKnownFrameType(8));

  EXPECT_EQ(FeedAll(&decoder, stream), "");
  for (const Frame& expected : sent) {
    Frame got;
    ASSERT_TRUE(decoder.Next(&got));
    EXPECT_EQ(got.type, expected.type);
    EXPECT_EQ(got.request_id, expected.request_id);
    EXPECT_EQ(got.payload, expected.payload);
  }
  Frame extra;
  EXPECT_FALSE(decoder.Next(&extra));
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodecTest, ZeroLengthPayloadRoundTrips) {
  // Shutdown frames carry no payload; the codec must not wait for bytes
  // that are not coming.
  const Frame f{FrameType::kShutdown, 7, ""};
  const std::string bytes = EncodeFrame(f);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes);

  FrameDecoder decoder;
  EXPECT_EQ(FeedAll(&decoder, bytes), "");
  Frame got;
  ASSERT_TRUE(decoder.Next(&got));
  EXPECT_EQ(got.type, FrameType::kShutdown);
  EXPECT_EQ(got.request_id, 7u);
  EXPECT_TRUE(got.payload.empty());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodecTest, MaxLengthFrameRoundTrips) {
  Frame f{FrameType::kWhatIfResponse, 42,
          std::string(kMaxFramePayload, 'x')};
  FrameDecoder decoder;
  EXPECT_EQ(FeedAll(&decoder, EncodeFrame(f)), "");
  Frame got;
  ASSERT_TRUE(decoder.Next(&got));
  EXPECT_EQ(got.payload.size(), size_t{kMaxFramePayload});
  EXPECT_FALSE(decoder.poisoned());
}

TEST(FrameCodecTest, ByteAtATimeFeedDecodesBothFrames) {
  const std::string stream =
      EncodeFrame({FrameType::kHello, 1, EncodeHello(HelloMsg{})}) +
      EncodeFrame({FrameType::kWhatIfRequest, 2, "q"});
  FrameDecoder decoder;
  std::vector<Frame> got;
  for (char c : stream) {
    ASSERT_TRUE(decoder.Feed(&c, 1).ok());
    Frame f;
    while (decoder.Next(&f)) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, FrameType::kHello);
  EXPECT_EQ(got[1].type, FrameType::kWhatIfRequest);
  EXPECT_EQ(got[1].payload, "q");
}

// ---------------------------------------------------------- torn streams

TEST(FrameCodecTest, TruncatedHeaderIsPendingNotPoisoned) {
  // 7 bytes of a valid frame: not decodable yet, but not an error either.
  // The transport distinguishes "waiting" from "torn" via pending_bytes()
  // at EOF.
  const std::string bytes = EncodeFrame({FrameType::kHello, 9, "hi"});
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(bytes.data(), 7).ok());
  Frame f;
  EXPECT_FALSE(decoder.Next(&f));
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.pending_bytes(), 7u);
}

TEST(FrameCodecTest, TruncatedPayloadIsPendingNotPoisoned) {
  const std::string bytes =
      EncodeFrame({FrameType::kWhatIfResponse, 3, "0123456789"});
  FrameDecoder decoder;
  // Header plus half the payload: a peer died mid-write.
  ASSERT_TRUE(decoder.Feed(bytes.data(), kFrameHeaderBytes + 5).ok());
  Frame f;
  EXPECT_FALSE(decoder.Next(&f));
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.pending_bytes(), kFrameHeaderBytes + 5);
}

// -------------------------------------------------------- poisoned streams

TEST(FrameCodecTest, GarbageLengthPrefixPoisonsImmediately) {
  // A length beyond kMaxFramePayload must fail the moment the header is
  // complete — not stall the connection buffering gigabytes.
  const std::string bytes = RawHeader(
      kFrameMagic, kMaxFramePayload + 1,
      static_cast<uint32_t>(FrameType::kHello), 1);
  FrameDecoder decoder;
  auto s = decoder.Feed(bytes.data(), bytes.size());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_TRUE(decoder.poisoned());
  Frame f;
  EXPECT_FALSE(decoder.Next(&f));
  // Poisoning is permanent: later feeds fail with the same error.
  const char more = 'x';
  EXPECT_FALSE(decoder.Feed(&more, 1).ok());
}

TEST(FrameCodecTest, BadMagicPoisons) {
  const std::string bytes = RawHeader(
      0xdeadbeef, 0, static_cast<uint32_t>(FrameType::kHello), 1);
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(bytes.data(), bytes.size()).ok());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_EQ(decoder.error().code(), StatusCode::kInvalidArgument);
}

TEST(FrameCodecTest, UnknownFrameTypePoisons) {
  const std::string bytes = RawHeader(kFrameMagic, 0, 99, 1);
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(bytes.data(), bytes.size()).ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameCodecTest, GarbageAfterValidFramePoisonsTheWholeStream) {
  // Once a peer emits a malformed header, nothing it said is trusted:
  // even the complete frame ahead of the garbage is withheld, and the
  // transport fails every pending call instead of half-delivering.
  const std::string stream =
      EncodeFrame({FrameType::kHelloAck, 5, EncodeHelloAck(HelloAckMsg{})}) +
      RawHeader(0x00000000, 12, 3, 9);
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(stream.data(), stream.size()).ok());
  Frame f;
  EXPECT_FALSE(decoder.Next(&f));
  EXPECT_TRUE(decoder.poisoned());
}

// ------------------------------------------------------ misbehaving peers
//
// A fake worker that completes the DTR1 handshake and then misbehaves on
// the first real request. Every channel call against it must fail with a
// clean transport error; the test completing at all (under the ctest
// timeout) is the no-hang proof.

enum class PeerBehavior {
  kGarbage,    // answers requests with bytes that are not DTR1
  kTornWrite,  // starts a valid response frame, closes mid-header
  kCloseSilently,  // closes without answering
};

class FakePeer {
 public:
  FakePeer(std::string socket_path, PeerBehavior behavior)
      : socket_path_(std::move(socket_path)), behavior_(behavior) {
    auto fd = ListenUnix(socket_path_);
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    listen_fd_ = std::move(fd).value();
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakePeer() {
    ShutdownFd(listen_fd_.get());
    thread_.join();
    ::unlink(socket_path_.c_str());
  }

 private:
  void Serve() {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) return;
    OwnedFd conn(fd);
    FrameDecoder decoder;
    std::vector<char> buffer(4096);
    while (true) {
      auto n = RecvSome(conn.get(), buffer.data(), buffer.size());
      if (!n.ok() || *n == 0) return;
      if (!decoder.Feed(buffer.data(), *n).ok()) return;
      Frame frame;
      while (decoder.Next(&frame)) {
        if (frame.type == FrameType::kHello) {
          const std::string ack = EncodeFrame(
              {FrameType::kHelloAck, frame.request_id,
               EncodeHelloAck(HelloAckMsg{})});
          EXPECT_TRUE(SendAll(conn.get(), ack.data(), ack.size()).ok());
          continue;
        }
        switch (behavior_) {
          case PeerBehavior::kGarbage: {
            // 64 bytes that are not DTR1 (magic would read 0x21212121).
            const std::string junk(64, '!');
            (void)SendAll(conn.get(), junk.data(), junk.size());
            return;  // and drop the connection
          }
          case PeerBehavior::kTornWrite: {
            const std::string bytes = EncodeFrame(
                {FrameType::kCreateStatsAck, frame.request_id,
                 EncodeCreateStatsAck(CreateStatsAckMsg{})});
            (void)SendAll(conn.get(), bytes.data(), 10);
            return;  // close with a partial frame on the wire
          }
          case PeerBehavior::kCloseSilently:
            return;
        }
      }
    }
  }

  std::string socket_path_;
  PeerBehavior behavior_;
  OwnedFd listen_fd_;
  std::thread thread_;
};

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return StrFormat("/tmp/dta_rpcft_%d_%d.sock",
                   static_cast<int>(::getpid()),
                   counter.fetch_add(1));
}

stats::StatsKey AnyKey() {
  return stats::StatsKey("shop", "orders", {"o_cust"});
}

Result<std::unique_ptr<SocketChannel>> ConnectTo(const std::string& path) {
  SocketChannelOptions options;
  options.connect_deadline_ms = 5000;
  return SocketChannel::Connect("peer", path, options);
}

TEST(MisbehavingPeerTest, GarbageResponseFailsTheCallCleanly) {
  const std::string path = UniqueSocketPath();
  FakePeer peer(path, PeerBehavior::kGarbage);
  auto channel = ConnectTo(path);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  Status s = (*channel)->CreateStatistics(AnyKey());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
}

TEST(MisbehavingPeerTest, TornWriteMidFrameFailsTheCallCleanly) {
  const std::string path = UniqueSocketPath();
  FakePeer peer(path, PeerBehavior::kTornWrite);
  auto channel = ConnectTo(path);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  Status s = (*channel)->CreateStatistics(AnyKey());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
}

TEST(MisbehavingPeerTest, SilentCloseFailsEveryPendingCall) {
  const std::string path = UniqueSocketPath();
  FakePeer peer(path, PeerBehavior::kCloseSilently);
  auto channel = ConnectTo(path);
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  Status s = (*channel)->CreateStatistics(AnyKey());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  // The channel stays usable for probes: the next call attempts a
  // reconnect and reports the worker (now gone for good) unavailable
  // instead of crashing or hanging.
  Status again = (*channel)->CreateStatistics(AnyKey());
  EXPECT_FALSE(again.ok());
}

TEST(MisbehavingPeerTest, ConnectToMissingWorkerFailsWithinDeadline) {
  SocketChannelOptions options;
  options.connect_deadline_ms = 50;
  auto channel =
      SocketChannel::Connect("ghost", UniqueSocketPath(), options);
  ASSERT_FALSE(channel.ok());
  EXPECT_EQ(channel.status().code(), StatusCode::kUnavailable)
      << channel.status().ToString();
}

}  // namespace
}  // namespace dta::rpc
