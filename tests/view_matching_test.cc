// Unit tests for materialized-view matching (optimizer/view_matching.h):
// compensation (residual predicates, re-aggregation), fold rules, and the
// conservative rejection cases.

#include <gtest/gtest.h>

#include <memory>

#include "optimizer/view_matching.h"
#include "sql/parser.h"

namespace dta::optimizer {
namespace {

using catalog::ColumnType;
using catalog::TableSchema;

class ViewMatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = std::make_unique<catalog::Catalog>();
    TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                  {"o_cust", ColumnType::kInt, 8},
                                  {"o_date", ColumnType::kString, 10},
                                  {"o_amount", ColumnType::kDouble, 8}});
    orders.set_row_count(10000);
    TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                                {"i_part", ColumnType::kInt, 8},
                                {"i_qty", ColumnType::kDouble, 8}});
    items.set_row_count(50000);
    catalog::Database db("db");
    ASSERT_TRUE(db.AddTable(orders).ok());
    ASSERT_TRUE(db.AddTable(items).ok());
    ASSERT_TRUE(catalog_->AddDatabase(std::move(db)).ok());
  }
  static void TearDownTestSuite() {
    catalog_.reset();
  }

  struct Parsed {
    std::shared_ptr<sql::SelectStatement> stmt;
    BoundQuery bound;
  };

  static Parsed Bind(const char* text) {
    auto parsed = sql::ParseStatement(text);
    EXPECT_TRUE(parsed.ok()) << text;
    Parsed out;
    out.stmt =
        std::make_shared<sql::SelectStatement>(parsed->select().Clone());
    auto bound = BindSelect(*out.stmt, *catalog_);
    EXPECT_TRUE(bound.ok()) << text << ": " << bound.status().ToString();
    out.bound = std::move(bound).value();
    return out;
  }

  static std::optional<ViewMatchInfo> Match(const char* query,
                                            const char* view_def) {
    Parsed q = Bind(query);
    Parsed v = Bind(view_def);
    view_.definition = v.stmt;
    view_.referenced_tables.clear();
    for (const auto& tr : v.stmt->from) {
      view_.referenced_tables.push_back(tr.table);
    }
    return MatchView(q.bound, v.bound, view_);
  }

  static std::unique_ptr<catalog::Catalog> catalog_;
  static catalog::ViewDef view_;
};

std::unique_ptr<catalog::Catalog> ViewMatchTest::catalog_;
catalog::ViewDef ViewMatchTest::view_;

TEST_F(ViewMatchTest, ExactMatchNoResiduals) {
  auto m = Match("SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust",
                 "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->residual_atoms.empty());
  EXPECT_TRUE(m->view_has_groupby);
  EXPECT_TRUE(m->reaggregate);  // re-aggregation is always safe
  ASSERT_EQ(m->item_sources.size(), 2u);
  EXPECT_TRUE(m->item_sources[0].compute_from_columns);
  EXPECT_EQ(m->item_sources[1].fold, sql::AggFunc::kSum);  // COUNT -> SUM
}

TEST_F(ViewMatchTest, CoarserGroupingFoldsAggregates) {
  auto m = Match(
      "SELECT o_cust, SUM(o_amount), MIN(o_amount) FROM orders GROUP BY "
      "o_cust",
      "SELECT o_cust, o_date, SUM(o_amount), MIN(o_amount), COUNT(*) FROM "
      "orders GROUP BY o_cust, o_date");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->item_sources[1].fold, sql::AggFunc::kSum);
  EXPECT_EQ(m->item_sources[2].fold, sql::AggFunc::kMin);
}

TEST_F(ViewMatchTest, ResidualRangeContainment) {
  // Query range strictly inside the view's range: match with residual.
  auto m = Match(
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date >= '2001-01-01' "
      "AND o_date < '2001-06-01' GROUP BY o_cust",
      "SELECT o_cust, o_date, COUNT(*) FROM orders WHERE o_date >= "
      "'2000-01-01' GROUP BY o_cust, o_date");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->residual_atoms.size(), 2u);
}

TEST_F(ViewMatchTest, RejectWhenViewStricter) {
  // View keeps only 2002+; the query needs everything.
  auto m = Match(
      "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust",
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date >= '2002-01-01' "
      "GROUP BY o_cust");
  EXPECT_FALSE(m.has_value());
}

TEST_F(ViewMatchTest, RejectResidualColumnNotExposed) {
  // The query filters on o_date but the view does not expose it.
  auto m = Match(
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date >= '2002-01-01' "
      "GROUP BY o_cust",
      "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust");
  EXPECT_FALSE(m.has_value());
}

TEST_F(ViewMatchTest, RejectFinerGrouping) {
  auto m = Match(
      "SELECT o_cust, o_date, COUNT(*) FROM orders GROUP BY o_cust, o_date",
      "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust");
  EXPECT_FALSE(m.has_value());
}

TEST_F(ViewMatchTest, RejectJoinGraphMismatch) {
  auto m = Match(
      "SELECT o_cust, COUNT(*) FROM orders, items WHERE o_id = i_oid GROUP "
      "BY o_cust",
      "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust");
  EXPECT_FALSE(m.has_value());
  auto m2 = Match(
      "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust",
      "SELECT o_cust, COUNT(*) FROM orders, items WHERE o_id = i_oid GROUP "
      "BY o_cust");
  EXPECT_FALSE(m2.has_value());
}

TEST_F(ViewMatchTest, JoinViewMatchesJoinQuery) {
  auto m = Match(
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust",
      "SELECT o_cust, SUM(i_qty) AS q, COUNT(*) AS c FROM orders, items "
      "WHERE o_id = i_oid GROUP BY o_cust");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->item_sources[1].fold, sql::AggFunc::kSum);
}

TEST_F(ViewMatchTest, AvgNeedsSumAndCount) {
  auto ok = Match(
      "SELECT o_cust, AVG(o_amount) FROM orders GROUP BY o_cust",
      "SELECT o_cust, SUM(o_amount) AS s, COUNT(*) AS c FROM orders GROUP "
      "BY o_cust");
  ASSERT_TRUE(ok.has_value());
  EXPECT_GE(ok->item_sources[1].avg_sum_col, 0);
  EXPECT_GE(ok->item_sources[1].avg_cnt_col, 0);

  auto missing_count = Match(
      "SELECT o_cust, AVG(o_amount) FROM orders GROUP BY o_cust",
      "SELECT o_cust, SUM(o_amount) AS s FROM orders GROUP BY o_cust");
  EXPECT_FALSE(missing_count.has_value());
}

TEST_F(ViewMatchTest, RejectCountDistinct) {
  auto m = Match(
      "SELECT o_cust, COUNT(DISTINCT o_date) FROM orders GROUP BY o_cust",
      "SELECT o_cust, o_date, COUNT(*) FROM orders GROUP BY o_cust, o_date");
  EXPECT_FALSE(m.has_value());
}

TEST_F(ViewMatchTest, RejectAggViewForPlainQuery) {
  auto m = Match("SELECT o_cust, o_amount FROM orders",
                 "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust");
  EXPECT_FALSE(m.has_value());
}

TEST_F(ViewMatchTest, SpjViewServesAggregateQuery) {
  auto m = Match(
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust",
      "SELECT o_cust, i_qty FROM orders, items WHERE o_id = i_oid");
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->view_has_groupby);
  EXPECT_TRUE(m->reaggregate);
  EXPECT_TRUE(m->item_sources[1].compute_from_columns);
}

TEST_F(ViewMatchTest, ExactPredicateIsAbsorbed) {
  auto m = Match(
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date >= '2002-01-01' "
      "GROUP BY o_cust",
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date >= '2002-01-01' "
      "GROUP BY o_cust");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->residual_atoms.empty());  // applied inside the view
}

}  // namespace
}  // namespace dta::optimizer
