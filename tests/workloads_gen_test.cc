// Tests for the evaluation workload generators (TPC-H-like, SYNT1, PSOFT,
// customer profiles): schemas attach, workloads parse and bind, profiles
// have the characteristics the experiments rely on.

#include <gtest/gtest.h>

#include <memory>

#include "optimizer/bound_query.h"
#include "sql/parser.h"
#include "workloads/customer.h"
#include "workloads/psoft.h"
#include "workloads/synt1.h"
#include "workloads/tpch.h"

namespace dta::workloads {
namespace {

// Every statement must bind against the server's catalog (no dangling
// tables/columns in generated SQL).
void ExpectAllBind(const workload::Workload& w, const server::Server& s) {
  for (const auto& ws : w.statements()) {
    if (ws.stmt.is_select()) {
      auto bound = optimizer::BindSelect(ws.stmt.select(), s.catalog());
      EXPECT_TRUE(bound.ok()) << ws.text << " -> "
                              << bound.status().ToString();
    } else {
      auto bound = optimizer::BindDml(ws.stmt, s.catalog());
      EXPECT_TRUE(bound.ok()) << ws.text << " -> "
                              << bound.status().ToString();
    }
  }
}

TEST(TpchTest, SchemaHasEightTablesAndScales) {
  auto specs1 = TpchTableSpecs(1.0);
  EXPECT_EQ(specs1.size(), 8u);
  auto specs_small = TpchTableSpecs(0.01);
  uint64_t li_1 = 0, li_small = 0;
  for (const auto& s : specs1) {
    if (s.schema.name() == "lineitem") li_1 = s.rows;
  }
  for (const auto& s : specs_small) {
    if (s.schema.name() == "lineitem") li_small = s.rows;
  }
  EXPECT_EQ(li_1, 6000000u);
  EXPECT_EQ(li_small, 60000u);
}

TEST(TpchTest, AttachMetadataOnly) {
  server::Server s("prod", {});
  ASSERT_TRUE(AttachTpch(&s, 10.0, /*with_data=*/false, 1).ok());
  auto t = s.catalog().ResolveTable("tpch", "lineitem");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->table->row_count(), 60000000u);
  EXPECT_EQ(s.Table("tpch", "lineitem"), nullptr);
  // Statistics still work via specs.
  EXPECT_TRUE(s.CreateStatistics(
                   stats::StatsKey("tpch", "lineitem", {"l_shipdate"}))
                  .ok());
}

TEST(TpchTest, AttachWithDataIsExecutable) {
  server::Server s("prod", {});
  ASSERT_TRUE(AttachTpch(&s, 0.002, /*with_data=*/true, 1).ok());
  auto q = sql::ParseStatement(
      "SELECT COUNT(*) FROM lineitem WHERE l_shipdate < '1995-01-01'");
  ASSERT_TRUE(q.ok());
  auto r = s.ExecuteSelect(q->select());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_GT(r->rows[0][0].AsInt(), 0);
}

TEST(TpchTest, TwentyTwoQueriesParseAndBind) {
  server::Server s("prod", {});
  ASSERT_TRUE(AttachTpch(&s, 0.01, /*with_data=*/false, 1).ok());
  workload::Workload w = TpchQueries(7);
  EXPECT_EQ(w.size(), 22u);
  EXPECT_EQ(w.DistinctTemplates(), 22u);  // all queries are distinct
  ExpectAllBind(w, s);
}

TEST(TpchTest, QueriesAreDeterministicPerSeed) {
  workload::Workload a = TpchQueries(7);
  workload::Workload b = TpchQueries(7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.statements()[i].text, b.statements()[i].text);
  }
}

TEST(TpchTest, PrefixSelectsFirstQueries) {
  workload::Workload w = TpchQueriesPrefix(1, 3);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w.statements()[0].text.find("l_returnflag"), std::string::npos);
}

TEST(TpchTest, RawConfigurationIsConstraintOnly) {
  catalog::Configuration raw = TpchRawConfiguration();
  EXPECT_EQ(raw.indexes().size(), 6u);
  for (const auto& ix : raw.indexes()) {
    EXPECT_TRUE(ix.constraint_enforcing);
  }
}

TEST(Synt1Test, AttachAndGenerate) {
  server::Server s("prod", {});
  ASSERT_TRUE(AttachSynt1(&s, 1000000, 5).ok());
  workload::Workload w = Synt1Workload(800, 100, 5);
  EXPECT_EQ(w.size(), 800u);
  // Template count drives compressibility (Table 3's SYNT1 row).
  EXPECT_LE(w.DistinctTemplates(), 120u);
  EXPECT_GE(w.DistinctTemplates(), 60u);
  ExpectAllBind(w, s);
  EXPECT_DOUBLE_EQ(w.UpdateFraction(), 0.0);  // pure query workload
}

TEST(PsoftTest, AttachAndGenerate) {
  server::Server s("prod", {});
  ASSERT_TRUE(AttachPsoft(&s, 3).ok());
  workload::Workload w = PsoftWorkload(2000, 3);
  EXPECT_EQ(w.size(), 2000u);
  ExpectAllBind(w, s);
  // Heavily templatized with a meaningful update mix.
  EXPECT_LT(w.DistinctTemplates(), 40u);
  EXPECT_GT(w.UpdateFraction(), 0.10);
  EXPECT_LT(w.UpdateFraction(), 0.45);
}

class CustomerTest : public ::testing::TestWithParam<CustomerProfile> {};

TEST_P(CustomerTest, AttachGenerateAndBind) {
  CustomerProfile p = GetParam();
  server::Server s("prod", {});
  ASSERT_TRUE(AttachCustomer(&s, p).ok());
  // Table count matches the profile.
  size_t total_tables = 0;
  for (const auto& [name, db] : s.catalog().databases()) {
    total_tables += db.tables().size();
  }
  EXPECT_EQ(total_tables, static_cast<size_t>(p.tables));
  EXPECT_EQ(s.catalog().databases().size(),
            static_cast<size_t>(p.databases));

  workload::Workload w = CustomerWorkload(p, s, 500);
  EXPECT_EQ(w.size(), 500u);
  ExpectAllBind(w, s);
  EXPECT_NEAR(w.UpdateFraction(), p.update_fraction,
              0.25);  // template-level mix approximates the target

  catalog::Configuration hand = HandTunedConfiguration(p, s);
  catalog::Configuration raw = CustomerRawConfiguration(p, s);
  if (p.hand_tuned == CustomerProfile::HandTunedStyle::kPkOnly) {
    EXPECT_EQ(hand.Fingerprint(), raw.Fingerprint());
  } else {
    EXPECT_GT(hand.indexes().size(), raw.indexes().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, CustomerTest,
                         ::testing::Values(Cust1(), Cust2(), Cust3(),
                                           Cust4()),
                         [](const ::testing::TestParamInfo<CustomerProfile>&
                                info) { return info.param.name; });

TEST(CustomerTest2, LogicalSizeApproximatesProfile) {
  CustomerProfile p = Cust1();
  server::Server s("prod", {});
  ASSERT_TRUE(AttachCustomer(&s, p).ok());
  double total_bytes = 0;
  for (const auto& [name, db] : s.catalog().databases()) {
    total_bytes += static_cast<double>(db.TotalDataBytes());
  }
  EXPECT_NEAR(total_bytes / 1e9, p.total_gb, p.total_gb * 0.3);
}

}  // namespace
}  // namespace dta::workloads
