// Multi-tenant tuning driver tests: admission-control caps and
// weighted-fair dispatch, input validation, and the fleet headline
// property — per-tenant recommendations are byte-identical at any
// (threads x shards x tenants) combination, with or without fail-slow
// faults, because tenants share capacity but never state.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "dta/tenant_driver.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as shard_router_test: two joinable tables with
// real data. Every tenant gets a fresh server so tenants never share state.
std::unique_ptr<server::Server> MakeProduction(const std::string& name,
                                               uint64_t seed = 11) {
  auto s =
      std::make_unique<server::Server>(name, optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

// Per-tenant workloads over the shared schema, distinct per seed so the
// tenants genuinely tune different things.
workload::Workload TenantWorkload(uint64_t seed) {
  Random rng(seed);
  const int count = static_cast<int>(rng.Uniform(4, 7));
  std::string script;
  for (int i = 0; i < count; ++i) {
    if (!script.empty()) script += ";";
    switch (rng.Uniform(0, 4)) {
      case 0:
        script += StrFormat("SELECT o_price FROM orders WHERE o_id = %d",
                            static_cast<int>(rng.Uniform(1, 30000)));
        break;
      case 1:
        script += StrFormat("SELECT i_qty FROM items WHERE i_part = %d",
                            static_cast<int>(rng.Uniform(1, 2000)));
        break;
      case 2:
        script +=
            "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE "
            "o_id = i_oid GROUP BY o_cust";
        break;
      default:
        script += StrFormat("SELECT o_id FROM orders WHERE o_price > %d",
                            static_cast<int>(rng.Uniform(100, 9000)));
        break;
    }
  }
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

std::string RecommendationXml(const TuningResult& r) {
  return ConfigurationToXml(r.recommendation)->ToString();
}

// --------------------------------------------------------- admission

TEST(AdmissionControllerTest, ClampsDegenerateCapacities) {
  AdmissionController zero({.total_capacity = 0, .per_tenant_capacity = 9});
  EXPECT_EQ(zero.options().total_capacity, 1);
  // The per-tenant cap can never exceed the total.
  EXPECT_EQ(zero.options().per_tenant_capacity, 1);

  AdmissionController neg({.total_capacity = 4, .per_tenant_capacity = -1});
  EXPECT_EQ(neg.options().total_capacity, 4);
  EXPECT_EQ(neg.options().per_tenant_capacity, 1);
}

TEST(AdmissionControllerTest, SerialAccountingAndCaps) {
  AdmissionController admission(
      {.total_capacity = 2, .per_tenant_capacity = 2});
  const int a = admission.RegisterTenant("a", 1);
  const int b = admission.RegisterTenant("b", 1);
  ASSERT_EQ(admission.tenant_count(), 2u);

  admission.Acquire(a);
  admission.Acquire(b);
  EXPECT_EQ(admission.peak_inflight(), 2u);
  admission.Release(a);
  admission.Release(b);
  admission.Acquire(a);
  admission.Release(a);

  EXPECT_EQ(admission.admitted(a), 2u);
  EXPECT_EQ(admission.admitted(b), 1u);
  // Nothing contended in this serial sequence.
  EXPECT_EQ(admission.waits(), 0u);
  EXPECT_EQ(admission.peak_inflight(), 2u);
}

// When a slot frees with several tenants waiting, the one with the
// smallest virtual time (admitted / weight) is admitted first: tenant b's
// higher weight gives it a smaller vtime despite more admitted calls.
TEST(AdmissionControllerTest, DispatchPrefersSmallestVirtualTime) {
  AdmissionController admission(
      {.total_capacity = 1, .per_tenant_capacity = 1});
  const int a = admission.RegisterTenant("a", 1);
  const int b = admission.RegisterTenant("b", 2);
  const int hog = admission.RegisterTenant("hog", 1);

  // Stage virtual times serially: a at vtime 1/1 = 1, b at 2/2 = 1... make
  // them unequal: one more call for a. a: 2/1 = 2, b: 2/2 = 1.
  admission.Acquire(a);
  admission.Release(a);
  admission.Acquire(a);
  admission.Release(a);
  admission.Acquire(b);
  admission.Release(b);
  admission.Acquire(b);
  admission.Release(b);

  // The hog holds the only slot while both a and b queue up behind it.
  admission.Acquire(hog);

  struct AdmitLog {
    Mutex order_mu;
    std::vector<int> order GUARDED_BY(order_mu);
  } log;
  std::atomic<int> started{0};
  auto waiter = [&](int tenant) {
    started.fetch_add(1);
    admission.Acquire(tenant);
    {
      MutexLock order_lock(log.order_mu);
      log.order.push_back(tenant);
    }
    admission.Release(tenant);
  };
  std::thread ta(waiter, a);
  std::thread tb(waiter, b);
  while (started.load() < 2) std::this_thread::yield();
  // Give both threads ample time to enter the wait before the slot frees.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  admission.Release(hog);
  ta.join();
  tb.join();

  {
    // Scoped so the admission queries below run with no lock held — holding
    // order_mu across them would add a needless order_mu -> mu_ edge to the
    // lock-order graph (dta_analyze).
    MutexLock order_lock(log.order_mu);
    ASSERT_EQ(log.order.size(), 2u);
    EXPECT_EQ(log.order[0], b) << "weighted-fair dispatch must admit the "
                                  "smaller-vtime tenant first";
    EXPECT_EQ(log.order[1], a);
  }
  EXPECT_GE(admission.waits(), 2u);
  EXPECT_EQ(admission.peak_inflight(), 1u);
}

// Sustained two-tenant contention on a single slot: both loops finish (no
// starvation) and the in-flight bound holds throughout.
TEST(AdmissionControllerTest, NoStarvationUnderSustainedContention) {
  AdmissionController admission(
      {.total_capacity = 1, .per_tenant_capacity = 1});
  const int heavy = admission.RegisterTenant("heavy", 1);
  const int light = admission.RegisterTenant("light", 1);

  std::thread th([&] {
    for (int i = 0; i < 200; ++i) {
      admission.Acquire(heavy);
      admission.Release(heavy);
    }
  });
  std::thread tl([&] {
    for (int i = 0; i < 200; ++i) {
      admission.Acquire(light);
      admission.Release(light);
    }
  });
  th.join();
  tl.join();

  EXPECT_EQ(admission.admitted(heavy), 200u);
  EXPECT_EQ(admission.admitted(light), 200u);
  EXPECT_EQ(admission.peak_inflight(), 1u);
}

// ------------------------------------------------------- driver validation

TEST(TenantDriverTest, RejectsMalformedFleets) {
  TenantDriver driver(TenantDriverOptions{});
  auto prod = MakeProduction("prod");
  workload::Workload w = TenantWorkload(5);

  EXPECT_FALSE(driver.Run({}, {}).ok());

  TenantSpec spec;
  spec.name = "a";
  spec.workload = &w;
  EXPECT_FALSE(driver.Run({spec}, {}).ok());  // tenant/server mismatch
  EXPECT_FALSE(driver.Run({spec}, {nullptr}).ok());

  TenantSpec no_workload;
  no_workload.name = "b";
  EXPECT_FALSE(driver.Run({no_workload}, {prod.get()}).ok());

  TenantSpec dup = spec;  // same name twice
  auto prod2 = MakeProduction("prod2");
  EXPECT_FALSE(driver.Run({spec, dup}, {prod.get(), prod2.get()}).ok());
}

// ------------------------------------------------------------ determinism

// One tenant through the driver is exactly one TuningSession: same
// recommendation, same costs, same call count as driving the session
// directly.
TEST(TenantDriverTest, SingleTenantMatchesDirectSession) {
  workload::Workload w = TenantWorkload(42);

  auto direct_server = MakeProduction("direct");
  TuningSession direct(direct_server.get(), TuningOptions());
  workload::Workload wcopy;
  for (const auto& ws : w.statements()) wcopy.Add(ws.stmt.Clone(), ws.weight);
  auto baseline = direct.Tune(wcopy);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto tenant_server = MakeProduction("tenant");
  TenantSpec spec;
  spec.name = "only";
  spec.workload = &w;
  TenantDriver driver(TenantDriverOptions{});
  auto outcomes = driver.Run({spec}, {tenant_server.get()});
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 1u);
  ASSERT_TRUE((*outcomes)[0].status.ok())
      << (*outcomes)[0].status.ToString();

  const TuningResult& got = (*outcomes)[0].result;
  EXPECT_EQ(RecommendationXml(got), RecommendationXml(*baseline));
  EXPECT_EQ(got.current_cost, baseline->current_cost);
  EXPECT_EQ(got.recommended_cost, baseline->recommended_cost);
  EXPECT_EQ(got.whatif_calls, baseline->whatif_calls);
}

// The fleet headline: every tenant's recommendation is byte-identical
// between the trivial topology (1 thread x 1 shard, tuned directly) and a
// contended fleet (8 threads x 4 shards x 3 tenants behind a small
// admission window) — with and without a fail-slow fault demoting one of
// each tenant's shards. Admission delays calls and the slowness detector
// re-routes them; neither changes what any call returns.
TEST(TenantDriverTest, RecommendationsAreByteIdenticalAtAnyTopology) {
  const std::vector<uint64_t> seeds = {101, 202, 303};
  std::vector<workload::Workload> workloads;
  for (uint64_t seed : seeds) workloads.push_back(TenantWorkload(seed));

  // Serial per-tenant baselines.
  std::vector<std::string> expected_xml;
  std::vector<size_t> expected_calls;
  for (size_t i = 0; i < workloads.size(); ++i) {
    auto prod = MakeProduction(StrFormat("base%zu", i));
    TuningSession session(prod.get(), TuningOptions());
    workload::Workload copy;
    for (const auto& ws : workloads[i].statements()) {
      copy.Add(ws.stmt.Clone(), ws.weight);
    }
    auto r = session.Tune(copy);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected_xml.push_back(RecommendationXml(*r));
    expected_calls.push_back(r->whatif_calls);
  }

  for (const bool failslow : {false, true}) {
    std::vector<std::unique_ptr<server::Server>> servers;
    std::vector<server::Server*> server_ptrs;
    std::vector<TenantSpec> specs;
    for (size_t i = 0; i < workloads.size(); ++i) {
      servers.push_back(MakeProduction(StrFormat("fleet%zu", i)));
      server_ptrs.push_back(servers.back().get());
      TenantSpec spec;
      spec.name = StrFormat("t%zu", i);
      spec.workload = &workloads[i];
      spec.options.num_threads = 8;
      spec.options.shards = 4;
      spec.weight = static_cast<double>(i + 1);
      if (failslow) {
        // One of each tenant's four shards turns fail-slow mid-run; the
        // detector demotes it to probe-only routing.
        spec.options.shard_slow_threshold = 4;
        spec.options.shard_fault_spec =
            "2:latency_ms=0.05,slow_after=5,slow_factor=200";
      }
      specs.push_back(spec);
    }

    TenantDriverOptions driver_options;
    driver_options.admission.total_capacity = 4;
    driver_options.admission.per_tenant_capacity = 2;
    TenantDriver driver(driver_options);
    auto outcomes = driver.Run(specs, server_ptrs);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    ASSERT_EQ(outcomes->size(), workloads.size());

    for (size_t i = 0; i < outcomes->size(); ++i) {
      const std::string label =
          StrFormat("tenant %zu failslow=%d", i, failslow ? 1 : 0);
      ASSERT_TRUE((*outcomes)[i].status.ok())
          << label << ": " << (*outcomes)[i].status.ToString();
      EXPECT_EQ(RecommendationXml((*outcomes)[i].result), expected_xml[i])
          << label;
      EXPECT_EQ((*outcomes)[i].result.whatif_calls, expected_calls[i])
          << label;
    }
    // The admission window held across the whole fleet.
    EXPECT_LE(driver.admission_peak_inflight(), 4u);
  }
}

}  // namespace
}  // namespace dta::tuner
