// Delta-checkpoint correctness under hostility: unit tests for the v3
// append-only record framing (torn tails, garbage, checksum damage), a
// randomized property test that interleaves (ingest, retune, kill, resume,
// compact) and checks every interleaving against a full-snapshot oracle —
// an identical service whose log is compacted to a single base record after
// every round — and a capture-parser fuzz pass mirroring the RPC
// FrameDecoder's poisoning tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "dta/checkpoint.h"
#include "dta/stream/capture.h"
#include "dta/stream/continuous.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "storage/datagen.h"

namespace dta::tuner::stream {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "dta_dlog_" + name + ".log";
}

std::string ReadFileRaw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void WriteFileRaw(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  EXPECT_TRUE(out.good()) << path;
}

// ----------------------------------------------------- record-framing unit

TEST(DeltaLogTest, BaseAndSegmentsRoundTrip) {
  const std::string path = TempPath("roundtrip");
  std::remove(path.c_str());

  ASSERT_TRUE(WriteDeltaBase(path, "base-state v1").ok());
  size_t appended = 0;
  ASSERT_TRUE(AppendDeltaSegment(path, "segment one", &appended).ok());
  EXPECT_GT(appended, std::string("segment one").size());
  ASSERT_TRUE(AppendDeltaSegment(path, "segment two\nwith newline").ok());

  auto log = ReadDeltaLog(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->base, "base-state v1");
  ASSERT_EQ(log->segments.size(), 2u);
  EXPECT_EQ(log->segments[0], "segment one");
  EXPECT_EQ(log->segments[1], "segment two\nwith newline");
  EXPECT_EQ(log->dropped_records, 0u);
}

TEST(DeltaLogTest, RewritingBaseTruncatesSegments) {
  const std::string path = TempPath("compact");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteDeltaBase(path, "old base").ok());
  ASSERT_TRUE(AppendDeltaSegment(path, "seg").ok());
  ASSERT_TRUE(WriteDeltaBase(path, "compacted base").ok());
  auto log = ReadDeltaLog(path);
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->base, "compacted base");
  EXPECT_TRUE(log->segments.empty());
}

TEST(DeltaLogTest, AppendWithoutBaseIsRefused) {
  const std::string path = TempPath("nobase");
  std::remove(path.c_str());
  const Status s = AppendDeltaSegment(path, "orphan segment");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s.ToString();
}

TEST(DeltaLogTest, MissingFileIsNotFound) {
  auto log = ReadDeltaLog(TempPath("never_written"));
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kNotFound);
}

// A crash mid-append leaves a torn tail. Truncating the log at EVERY byte
// boundary must yield either a clean read of some record prefix (with the
// torn tail counted) or, when the base itself is damaged, a refusal —
// never a crash, never a half-applied record.
TEST(DeltaLogTest, TruncationAtEveryByteIsTornNeverCorrupt) {
  const std::string path = TempPath("truncate_sweep");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteDeltaBase(path, "the base record payload").ok());
  std::vector<size_t> boundaries;  // file sizes at clean record boundaries
  boundaries.push_back(ReadFileRaw(path).size());
  ASSERT_TRUE(AppendDeltaSegment(path, "first segment").ok());
  boundaries.push_back(ReadFileRaw(path).size());
  ASSERT_TRUE(AppendDeltaSegment(path, "second segment").ok());
  const std::string full = ReadFileRaw(path);
  boundaries.push_back(full.size());

  auto intact = ReadDeltaLog(path);
  ASSERT_TRUE(intact.ok());
  const size_t all_segments = intact->segments.size();

  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteFileRaw(path, full.substr(0, cut));
    auto log = ReadDeltaLog(path);
    if (!log.ok()) {
      // Only acceptable when the base record itself is incomplete.
      EXPECT_EQ(log.status().code(), StatusCode::kInvalidArgument)
          << "cut=" << cut;
      continue;
    }
    EXPECT_EQ(log->base, "the base record payload") << "cut=" << cut;
    EXPECT_LE(log->segments.size(), all_segments) << "cut=" << cut;
    // A cut exactly on a record boundary tears nothing; anywhere else the
    // partial record must be counted.
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    EXPECT_EQ(log->dropped_records, on_boundary ? 0u : 1u) << "cut=" << cut;
    for (const std::string& seg : log->segments) {
      EXPECT_TRUE(seg == "first segment" || seg == "second segment")
          << "cut=" << cut;
    }
  }
}

// Garbage appended past valid records (a crashed writer's scribble) is
// dropped; flipped payload bytes fail the checksum and stop the read there.
TEST(DeltaLogTest, GarbageTailAndChecksumDamageAreDropped) {
  const std::string path = TempPath("garbage");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteDeltaBase(path, "base").ok());
  ASSERT_TRUE(AppendDeltaSegment(path, "good segment").ok());
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "DTAS3 seg 999 12345\nnot really that long";
  }
  auto log = ReadDeltaLog(path);
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->segments.size(), 1u);
  EXPECT_EQ(log->segments[0], "good segment");
  EXPECT_EQ(log->dropped_records, 1u);

  // Flip one payload byte of the good segment: checksum catches it.
  std::string full = ReadFileRaw(path);
  const size_t at = full.find("good segment");
  ASSERT_NE(at, std::string::npos);
  full[at] ^= 0x20;
  WriteFileRaw(path, full);
  auto damaged = ReadDeltaLog(path);
  ASSERT_TRUE(damaged.ok());
  EXPECT_TRUE(damaged->segments.empty());
  EXPECT_EQ(damaged->dropped_records, 1u);
}

TEST(DeltaLogTest, DamagedBaseRefusesToLoad) {
  const std::string path = TempPath("bad_base");
  std::remove(path.c_str());
  ASSERT_TRUE(WriteDeltaBase(path, "precious state").ok());
  std::string full = ReadFileRaw(path);
  const size_t at = full.find("precious");
  ASSERT_NE(at, std::string::npos);
  full[at] = 'q';
  WriteFileRaw(path, full);
  auto log = ReadDeltaLog(path);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ service prop

std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

// A randomized capture over a fixed statement pool, with ticks, comments,
// garbage SQL, and malformed directives mixed in — each seed is one
// workload history.
std::string RandomCapture(uint64_t seed, size_t lines) {
  static const char* kPool[] = {
      "SELECT o_price FROM orders WHERE o_id = 55",
      "SELECT o_price FROM orders WHERE o_id = 120",
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust",
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust",
      "SELECT i_qty FROM items WHERE i_part = 77",
      "SELECT i_part, SUM(i_qty) FROM items GROUP BY i_part",
      "SELECT o_date FROM orders WHERE o_cust = 9",
  };
  Random rng(seed);
  std::string capture;
  for (size_t i = 0; i < lines; ++i) {
    const int64_t kind = rng.Uniform(0, 9);
    if (kind == 0) {
      capture += "@tick " + std::to_string(rng.Uniform(1, 500)) + "\n";
    } else if (kind == 1) {
      capture += "# comment line\n";
    } else if (kind == 2) {
      capture += "garbage ((\n";
    } else if (kind == 3) {
      capture += "@bogus directive\n";
    } else {
      capture += kPool[rng.Uniform(0, 6)];
      capture += "\n";
    }
  }
  return capture;
}

ContinuousTuner::Config PropConfig(server::Server* server) {
  ContinuousTuner::Config config;
  config.server = server;
  config.options.num_threads = 2;
  config.retune_interval_events = 5;
  config.max_templates = 4;  // small: eviction paths get exercised
  config.decay = 0.5;        // decay paths too
  return config;
}

// The oracle: the same service, but its log is compacted to a single
// full-snapshot base record after every round (threshold 0 forces it), and
// it never dies. Whatever a kill/resume chain over an append-only log
// produces must match this byte for byte.
std::string OracleDeltaText(const std::string& capture,
                            const std::string& path) {
  std::remove(path.c_str());
  auto prod = MakeProduction();
  ContinuousTuner::Config config = PropConfig(prod.get());
  config.checkpoint_path = path;
  config.compact_threshold_bytes = 0;  // every append compacts immediately
  ContinuousTuner tuner(std::move(config));
  EXPECT_TRUE(tuner.Init().ok());
  EXPECT_TRUE(tuner.Feed(capture).ok());
  EXPECT_TRUE(tuner.Finish().ok());
  return tuner.delta_text();
}

TEST(StreamCheckpointPropertyTest, RandomKillResumeChainsMatchOracle) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const std::string capture = RandomCapture(seed, 60);
    const std::string oracle =
        OracleDeltaText(capture, TempPath("oracle_" + std::to_string(seed)));

    // Reference rounds for this capture, to bound the kill schedule.
    uint64_t total_rounds = 0;
    {
      auto prod = MakeProduction();
      ContinuousTuner tuner(PropConfig(prod.get()));
      ASSERT_TRUE(tuner.Init().ok());
      ASSERT_TRUE(tuner.Feed(capture).ok());
      ASSERT_TRUE(tuner.Finish().ok());
      total_rounds = tuner.rounds();
      EXPECT_EQ(oracle, tuner.delta_text()) << "seed=" << seed;
    }
    if (total_rounds == 0) continue;

    // A random kill/resume chain: die at a random round boundary, resume on
    // a fresh server, repeat until the capture is exhausted. A tiny compact
    // threshold on odd seeds forces mid-chain compactions.
    Random rng(seed * 977);
    const std::string path = TempPath("chain_" + std::to_string(seed));
    std::remove(path.c_str());
    std::string combined;
    uint64_t done = 0;
    while (done < total_rounds) {
      const uint64_t next_kill =
          std::min<uint64_t>(total_rounds,
                             done + static_cast<uint64_t>(rng.Uniform(1, 3)));
      auto prod = MakeProduction();
      ContinuousTuner::Config config = PropConfig(prod.get());
      config.checkpoint_path = path;
      if (seed % 2 == 1) config.compact_threshold_bytes = 1024;
      ContinuousTuner tuner(std::move(config));
      ASSERT_TRUE(tuner.Init().ok()) << "seed=" << seed << " done=" << done;
      EXPECT_EQ(tuner.resumed(), done > 0);
      EXPECT_EQ(tuner.rounds(), done);
      tuner.set_max_rounds(next_kill);
      ASSERT_TRUE(tuner.Feed(capture).ok());
      if (next_kill >= total_rounds) ASSERT_TRUE(tuner.Finish().ok());
      combined += tuner.delta_text();
      done = tuner.rounds();
      ASSERT_EQ(done, next_kill) << "seed=" << seed;
    }
    EXPECT_EQ(oracle, combined) << "seed=" << seed;
  }
}

// Per-round appended segments must stay O(new work), not O(total state):
// once the workload stops changing, a round touches one template and no new
// memo entries, so its segment must be a small fraction of the base record
// that carries the whole state.
TEST(StreamCheckpointPropertyTest, SteadyStateSegmentsAreONewWork) {
  // Three diverse rounds build up state; six steady rounds repeat a single
  // statement the memo already prices under every explored configuration.
  std::string capture;
  static const char* kDiverse[] = {
      "SELECT o_price FROM orders WHERE o_id = 55",
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust",
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust",
      "SELECT i_qty FROM items WHERE i_part = 77",
      "SELECT i_part, SUM(i_qty) FROM items GROUP BY i_part",
  };
  for (int round = 0; round < 3; ++round) {
    for (const char* stmt : kDiverse) {
      capture += stmt;
      capture += "\n";
    }
  }
  for (int i = 0; i < 30; ++i) {
    capture += "SELECT o_price FROM orders WHERE o_id = 55\n";
  }

  const std::string path = TempPath("bounded");
  std::remove(path.c_str());
  auto prod = MakeProduction();
  ContinuousTuner::Config config = PropConfig(prod.get());
  config.max_templates = 8;  // no evictions: pure steady state
  config.decay = 1.0;
  config.checkpoint_path = path;
  config.compact_threshold_bytes = 1 << 30;  // never compact: pure appends
  ContinuousTuner tuner(std::move(config));
  ASSERT_TRUE(tuner.Init().ok());
  ASSERT_TRUE(tuner.Feed(capture).ok());
  ASSERT_TRUE(tuner.Finish().ok());
  ASSERT_EQ(tuner.rounds(), 9u);
  ASSERT_FALSE(tuner.base_bytes_history().empty());
  const double base_bytes =
      static_cast<double>(tuner.base_bytes_history().front());
  const auto& history = tuner.delta_bytes_history();
  ASSERT_EQ(history.size(), 8u);  // rounds 2..9 appended segments
  // Steady-state rounds: 5..9 → history[3..7].
  for (size_t i = 3; i < history.size(); ++i) {
    EXPECT_LT(static_cast<double>(history[i]), base_bytes / 2)
        << "round " << i + 2;
  }
}

// ------------------------------------------------------- capture fuzz pass

// Random byte soup through the reader: never crashes, never produces an
// event after poisoning, and chunking never changes the event sequence.
TEST(CaptureFuzzTest, RandomBytesNeverBreakFraming) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Random rng(seed * 131);
    std::string soup;
    const size_t n = static_cast<size_t>(rng.Uniform(0, 2000));
    for (size_t i = 0; i < n; ++i) {
      const int64_t roll = rng.Uniform(0, 99);
      if (roll < 12) {
        soup += '\n';
      } else if (roll < 18) {
        soup += '@';
      } else if (roll < 24) {
        soup += '#';
      } else {
        soup += static_cast<char>(rng.Uniform(32, 126));
      }
    }

    CaptureReader whole(/*max_line_bytes=*/128);
    whole.Consume(soup);
    whole.Finish();
    std::vector<CaptureEvent> whole_events = whole.Drain();

    CaptureReader chunked(/*max_line_bytes=*/128);
    size_t i = 0;
    while (i < soup.size()) {
      const size_t len = static_cast<size_t>(rng.Uniform(1, 17));
      chunked.Consume(std::string_view(soup).substr(i, len));
      i += len;
    }
    chunked.Finish();
    std::vector<CaptureEvent> chunked_events = chunked.Drain();

    ASSERT_EQ(whole_events.size(), chunked_events.size()) << "seed=" << seed;
    for (size_t e = 0; e < whole_events.size(); ++e) {
      EXPECT_EQ(whole_events[e].kind, chunked_events[e].kind);
      EXPECT_EQ(whole_events[e].text, chunked_events[e].text);
      EXPECT_EQ(whole_events[e].tick_ms, chunked_events[e].tick_ms);
    }
    EXPECT_EQ(whole.poisoned(), chunked.poisoned()) << "seed=" << seed;
    EXPECT_EQ(whole.lines_consumed(), chunked.lines_consumed());
    EXPECT_EQ(whole.parse_errors(), chunked.parse_errors());
    EXPECT_EQ(whole.torn_lines(), chunked.torn_lines());
  }
}

TEST(CaptureFuzzTest, TornFinalLineIsCountedNotParsed) {
  CaptureReader reader;
  reader.Consume("SELECT 1 FROM t\nSELECT 2 FROM");  // no trailing newline
  reader.Finish();
  auto events = reader.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].text, "SELECT 1 FROM t");
  EXPECT_EQ(reader.torn_lines(), 1u);
  EXPECT_EQ(reader.lines_consumed(), 1u);  // the torn line was never consumed
}

TEST(CaptureFuzzTest, PoisonIsPermanent) {
  CaptureReader reader(/*max_line_bytes=*/8);
  reader.Consume("0123456789abcdef\n");  // over the bound
  EXPECT_TRUE(reader.poisoned());
  reader.Consume("SELECT 1\n");  // perfectly fine line — too late
  reader.Finish();
  EXPECT_TRUE(reader.Drain().empty());
  EXPECT_TRUE(reader.poisoned());
}

TEST(CaptureFuzzTest, SkipLinesDiscardsExactPrefix) {
  const std::string capture =
      "SELECT 1 FROM t\n# comment\n@tick 5\nSELECT 2 FROM t\n";
  CaptureReader reader;
  reader.SkipLines(3);  // statement + comment + tick
  reader.Consume(capture);
  reader.Finish();
  auto events = reader.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].text, "SELECT 2 FROM t");
  EXPECT_EQ(reader.lines_consumed(), 4u);
}

}  // namespace
}  // namespace dta::tuner::stream
