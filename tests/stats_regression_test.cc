// Regression tests for estimator bugs originally caught by the paper-
// reproduction benches (Table 2): sampled statistics on huge tables must
// not distort point-lookup estimates.

#include <gtest/gtest.h>

#include "stats/builder.h"
#include "stats/histogram.h"
#include "storage/datagen.h"

namespace dta::stats {
namespace {

// Bug 1: SynthesizeFromSpecs drew kSequential samples from positions
// 0..sample_n, so the histogram covered ids 1..50000 of a 400M-row table;
// any id below 50000 was estimated to match ~scale rows.
TEST(StatsRegressionTest, SequentialSynthesisCoversFullDomain) {
  catalog::TableSchema t("big", {{"id", catalog::ColumnType::kInt, 8}});
  t.set_row_count(400000000);  // 400M rows
  t.SetPrimaryKey({"id"});
  Random rng(1);
  auto s = SynthesizeFromSpecs("db", t, {storage::ColumnSpec::Sequential()},
                               {"id"}, &rng);
  ASSERT_TRUE(s.ok());
  // The histogram must span the whole key domain...
  EXPECT_GT(s->histogram.MaxValue().AsInt(), 300000000);
  // ...and a point lookup anywhere must estimate ~1 row.
  for (int64_t id : {5000L, 21052L, 100000000L, 399999999L}) {
    EXPECT_LE(s->histogram.EstimateEquals(sql::Value::Int(id)), 4.0)
        << "id=" << id;
  }
  EXPECT_NEAR(s->prefix_distinct[0], 400000000, 1);
}

// Bug 2: without the expected-distinct correction, a sparse sample of a
// near-unique column over-reported every sampled value's frequency by the
// sampling scale (scale ~8000 at 50k samples of 400M rows).
TEST(StatsRegressionTest, SparseSampleDistinctCorrection) {
  // 10k distinct values sampled at 1:100 from a 1M-row "table".
  Random rng(2);
  std::vector<sql::Value> sample;
  for (int i = 0; i < 10000; ++i) {
    sample.push_back(sql::Value::Int(rng.Uniform(1, 1000000)));
  }
  // Without correction: each sampled value looks like ~100 rows.
  Histogram uncorrected = Histogram::Build(sample, 100.0, 200);
  // With correction (the column is near-unique: ~1M distinct):
  Histogram corrected = Histogram::Build(sample, 100.0, 200, 1000000.0);
  ASSERT_FALSE(corrected.empty());
  double est = corrected.EstimateEquals(sample[123]);
  EXPECT_LE(est, 5.0);
  EXPECT_GT(uncorrected.EstimateEquals(sample[123]), 50.0);
  // Totals are unchanged by the correction.
  EXPECT_NEAR(corrected.total_rows(), uncorrected.total_rows(), 1e-6);
  EXPECT_NEAR(corrected.distinct_count(), 1000000.0, 1.0);
}

TEST(StatsRegressionTest, CorrectionPreservesLowCardinality) {
  // A 50-distinct-value column must NOT be damaged by the correction path.
  Random rng(3);
  std::vector<sql::Value> sample;
  for (int i = 0; i < 10000; ++i) {
    sample.push_back(sql::Value::Int(rng.Uniform(1, 50)));
  }
  Histogram h = Histogram::Build(sample, 100.0, 200, 50.0);
  // 1M rows over 50 values => ~20000 rows each.
  EXPECT_NEAR(h.EstimateEquals(sql::Value::Int(25)), 20000, 6000);
}

TEST(StatsRegressionTest, RangeEstimatesUnaffectedByCorrection) {
  std::vector<sql::Value> sample;
  for (int i = 1; i <= 10000; ++i) sample.push_back(sql::Value::Int(i));
  Histogram h = Histogram::Build(sample, 100.0, 100, 1000000.0);
  double half = h.EstimateRange(std::nullopt, false, sql::Value::Int(5000),
                                true);
  EXPECT_NEAR(half, 500000, 30000);  // half of 1M rows
}

// Data-built statistics with striding must sample the whole table too.
TEST(StatsRegressionTest, StridedDataSampleCoversTable) {
  catalog::TableSchema t("t", {{"k", catalog::ColumnType::kInt, 8}});
  t.set_row_count(500000);
  storage::TableGenSpec spec;
  spec.schema = t;
  spec.column_specs = {storage::ColumnSpec::Sequential()};
  spec.rows = 500000;
  Random rng(4);
  auto data = storage::GenerateTable(spec, &rng);
  ASSERT_TRUE(data.ok());
  BuildOptions opts;
  opts.max_sample_rows = 10000;  // force 1:50 striding
  auto s = BuildFromData("db", t, *data, {"k"}, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->histogram.MaxValue().AsInt(), 450000);
  EXPECT_NEAR(s->prefix_distinct[0], 500000, 25000);
  // Point estimate on a key column stays ~1 even under sparse sampling.
  EXPECT_LE(s->histogram.EstimateEquals(sql::Value::Int(123456)), 5.0);
}

}  // namespace
}  // namespace dta::stats
