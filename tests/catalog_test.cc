#include <gtest/gtest.h>

#include "catalog/schema.h"

namespace dta::catalog {
namespace {

TableSchema MakeOrders() {
  TableSchema t("Orders", {{"o_orderkey", ColumnType::kInt, 8},
                           {"o_custkey", ColumnType::kInt, 8},
                           {"o_orderdate", ColumnType::kString, 10},
                           {"o_totalprice", ColumnType::kDouble, 8}});
  t.set_row_count(150000);
  t.SetPrimaryKey({"o_orderkey"});
  return t;
}

TEST(TableSchemaTest, NormalizesNames) {
  TableSchema t = MakeOrders();
  EXPECT_EQ(t.name(), "orders");
  EXPECT_EQ(t.column(0).name, "o_orderkey");
}

TEST(TableSchemaTest, ColumnIndexCaseInsensitive) {
  TableSchema t = MakeOrders();
  EXPECT_EQ(t.ColumnIndex("O_CUSTKEY"), 1);
  EXPECT_EQ(t.ColumnIndex("o_orderdate"), 2);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
  EXPECT_TRUE(t.HasColumn("o_totalprice"));
}

TEST(TableSchemaTest, PrimaryKey) {
  TableSchema t = MakeOrders();
  ASSERT_EQ(t.primary_key().size(), 1u);
  EXPECT_EQ(t.primary_key()[0], 0);
}

TEST(TableSchemaTest, SizeEstimates) {
  TableSchema t = MakeOrders();
  EXPECT_EQ(t.RowBytes(), 9 + 8 + 8 + 10 + 8);
  EXPECT_EQ(t.DataBytes(), 150000ull * t.RowBytes());
  EXPECT_GT(t.DataPages(), 0u);
  EXPECT_EQ(t.DataPages(),
            (t.DataBytes() + TableSchema::kPageBytes - 1) /
                TableSchema::kPageBytes);
}

TEST(DatabaseTest, AddAndFind) {
  Database db("TPCH");
  EXPECT_EQ(db.name(), "tpch");
  ASSERT_TRUE(db.AddTable(MakeOrders()).ok());
  EXPECT_FALSE(db.AddTable(MakeOrders()).ok());  // duplicate
  EXPECT_NE(db.FindTable("ORDERS"), nullptr);
  EXPECT_EQ(db.FindTable("missing"), nullptr);
  EXPECT_GT(db.TotalDataBytes(), 0u);
}

TEST(CatalogTest, ResolveQualifiedAndUnqualified) {
  Catalog cat;
  Database db1("db1"), db2("db2");
  ASSERT_TRUE(db1.AddTable(MakeOrders()).ok());
  TableSchema other("customer", {{"c_custkey", ColumnType::kInt, 8}});
  ASSERT_TRUE(db2.AddTable(other).ok());
  ASSERT_TRUE(cat.AddDatabase(std::move(db1)).ok());
  ASSERT_TRUE(cat.AddDatabase(std::move(db2)).ok());

  auto r = cat.ResolveTable("", "orders");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->database->name(), "db1");

  auto r2 = cat.ResolveTable("db2", "customer");
  ASSERT_TRUE(r2.ok());

  EXPECT_FALSE(cat.ResolveTable("db2", "orders").ok());
  EXPECT_FALSE(cat.ResolveTable("", "missing").ok());
  EXPECT_FALSE(cat.ResolveTable("nodb", "orders").ok());
}

TEST(CatalogTest, AmbiguousUnqualifiedFails) {
  Catalog cat;
  Database db1("db1"), db2("db2");
  ASSERT_TRUE(db1.AddTable(MakeOrders()).ok());
  ASSERT_TRUE(db2.AddTable(MakeOrders()).ok());
  ASSERT_TRUE(cat.AddDatabase(std::move(db1)).ok());
  ASSERT_TRUE(cat.AddDatabase(std::move(db2)).ok());
  EXPECT_FALSE(cat.ResolveTable("", "orders").ok());
  EXPECT_TRUE(cat.ResolveTable("db1", "orders").ok());
}

TEST(ColumnTypeTest, Names) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt), "int");
  auto r = ColumnTypeFromName("STRING");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ColumnType::kString);
  EXPECT_FALSE(ColumnTypeFromName("blob").ok());
}

}  // namespace
}  // namespace dta::catalog
