#include <gtest/gtest.h>

#include <set>

#include "storage/datagen.h"
#include "storage/table_data.h"

namespace dta::storage {
namespace {

catalog::TableSchema MakeSchema() {
  return catalog::TableSchema(
      "t", {{"id", catalog::ColumnType::kInt, 8},
            {"price", catalog::ColumnType::kDouble, 8},
            {"name", catalog::ColumnType::kString, 12}});
}

TEST(TableDataTest, AppendAndGet) {
  TableData d(MakeSchema());
  ASSERT_TRUE(d.AppendRow({sql::Value::Int(1), sql::Value::Double(9.5),
                           sql::Value::String("alpha")})
                  .ok());
  ASSERT_TRUE(d.AppendRow({sql::Value::Int(2), sql::Value::Int(3),
                           sql::Value::String("beta")})
                  .ok());  // int into double column OK
  EXPECT_EQ(d.row_count(), 2u);
  EXPECT_EQ(d.GetValue(0, 0).AsInt(), 1);
  EXPECT_DOUBLE_EQ(d.GetValue(1, 1).ToDouble(), 3.0);
  EXPECT_EQ(d.GetValue(1, 2).AsString(), "beta");
}

TEST(TableDataTest, AppendTypeErrors) {
  TableData d(MakeSchema());
  EXPECT_FALSE(d.AppendRow({sql::Value::String("x"), sql::Value::Double(1),
                            sql::Value::String("y")})
                   .ok());
  EXPECT_FALSE(d.AppendRow({sql::Value::Int(1)}).ok());  // arity
}

TEST(TableDataTest, CompareRows) {
  TableData d(MakeSchema());
  ASSERT_TRUE(d.AppendRow({sql::Value::Int(1), sql::Value::Double(2.0),
                           sql::Value::String("a")})
                  .ok());
  ASSERT_TRUE(d.AppendRow({sql::Value::Int(1), sql::Value::Double(1.0),
                           sql::Value::String("b")})
                  .ok());
  EXPECT_EQ(d.CompareRows(0, 1, {0}), 0);
  EXPECT_GT(d.CompareRows(0, 1, {0, 1}), 0);
  EXPECT_LT(d.CompareRows(0, 1, {2}), 0);
}

TEST(TableDataTest, CompareRowToKey) {
  TableData d(MakeSchema());
  ASSERT_TRUE(d.AppendRow({sql::Value::Int(5), sql::Value::Double(2.0),
                           sql::Value::String("a")})
                  .ok());
  EXPECT_EQ(d.CompareRowToKey(0, {0}, {sql::Value::Int(5)}), 0);
  EXPECT_GT(d.CompareRowToKey(0, {0}, {sql::Value::Int(4)}), 0);
  EXPECT_LT(d.CompareRowToKey(0, {0}, {sql::Value::Int(6)}), 0);
}

TEST(DateStringTest, Arithmetic) {
  EXPECT_EQ(DateString("1992-01-01", 0), "1992-01-01");
  EXPECT_EQ(DateString("1992-01-01", 31), "1992-02-01");
  EXPECT_EQ(DateString("1992-02-28", 1), "1992-02-29");  // leap year
  EXPECT_EQ(DateString("1993-02-28", 1), "1993-03-01");  // non-leap
  EXPECT_EQ(DateString("1992-12-31", 1), "1993-01-01");
  EXPECT_EQ(DateString("1998-12-01", -30), "1998-11-01");
}

TEST(ColumnSpecTest, SampleBounds) {
  Random rng(1);
  ColumnSpec u = ColumnSpec::UniformInt(10, 20);
  for (int i = 0; i < 200; ++i) {
    int64_t v = u.Sample(0, &rng).AsInt();
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 20);
  }
  ColumnSpec z = ColumnSpec::ZipfInt(100, 50, 1.0);
  for (int i = 0; i < 200; ++i) {
    int64_t v = z.Sample(0, &rng).AsInt();
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 149);
  }
  ColumnSpec seq = ColumnSpec::Sequential();
  EXPECT_EQ(seq.Sample(41, &rng).AsInt(), 42);  // lo defaults to 1
}

TEST(ColumnSpecTest, DateSamplesWithinRange) {
  Random rng(2);
  ColumnSpec d = ColumnSpec::Date("1994-01-01", 365);
  for (int i = 0; i < 100; ++i) {
    std::string s = d.Sample(0, &rng).AsString();
    EXPECT_GE(s, std::string("1994-01-01"));
    EXPECT_LT(s, std::string("1995-01-01"));
  }
}

TEST(ColumnSpecTest, StringPoolDistinct) {
  Random rng(3);
  ColumnSpec s = ColumnSpec::StringPool("nation", 5);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) seen.insert(s.Sample(0, &rng).AsString());
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.begin()->substr(0, 6), "nation");
}

TEST(ColumnSpecTest, ExpectedDistinct) {
  EXPECT_DOUBLE_EQ(ColumnSpec::Sequential().ExpectedDistinct(1000), 1000.0);
  double d = ColumnSpec::UniformInt(1, 100).ExpectedDistinct(10000);
  EXPECT_GT(d, 95.0);
  EXPECT_LE(d, 100.0);
  double small = ColumnSpec::UniformInt(1, 1000000).ExpectedDistinct(100);
  EXPECT_GT(small, 90.0);
  EXPECT_LE(small, 100.0);
}

TEST(GenerateTableTest, GeneratesAllColumns) {
  TableGenSpec spec;
  spec.schema = MakeSchema();
  spec.schema.set_row_count(1000);
  spec.column_specs = {ColumnSpec::Sequential(),
                       ColumnSpec::UniformReal(0.0, 100.0),
                       ColumnSpec::StringPool("n", 10)};
  spec.rows = 1000;
  Random rng(7);
  auto data = GenerateTable(spec, &rng);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->row_count(), 1000u);
  EXPECT_EQ(data->GetValue(0, 0).AsInt(), 1);
  EXPECT_EQ(data->GetValue(999, 0).AsInt(), 1000);
}

TEST(GenerateTableTest, SpecSchemaMismatch) {
  TableGenSpec spec;
  spec.schema = MakeSchema();
  spec.column_specs = {ColumnSpec::Sequential()};  // wrong count
  spec.rows = 10;
  Random rng(1);
  EXPECT_FALSE(GenerateTable(spec, &rng).ok());

  spec.column_specs = {ColumnSpec::Sequential(), ColumnSpec::Sequential(),
                       ColumnSpec::Sequential()};  // wrong type for col 1
  EXPECT_FALSE(GenerateTable(spec, &rng).ok());
}

TEST(SampleColumnTest, Sizes) {
  Random rng(1);
  auto vals = SampleColumn(ColumnSpec::UniformInt(1, 5), 50, &rng);
  EXPECT_EQ(vals.size(), 50u);
}

}  // namespace
}  // namespace dta::storage
