#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace dta {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  DTA_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("x"), "x");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("LineItem", "lineitem"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("lineitem", "line"));
  EXPECT_FALSE(StartsWith("line", "lineitem"));
  EXPECT_TRUE(EndsWith("lineitem", "item"));
  EXPECT_FALSE(EndsWith("item", "lineitem"));
}

TEST(StringsTest, StrJoin) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(StrJoin(v, ", "), "a, b, c");
  std::vector<int> ints = {1, 2};
  EXPECT_EQ(StrJoin(ints, "-"), "1-2");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringsTest, CompactDouble) {
  EXPECT_EQ(CompactDouble(12.0), "12");
  EXPECT_EQ(CompactDouble(12.5), "12.5");
}

TEST(RandomTest, UniformBounds) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RandomTest, ZipfBoundsAndSkew) {
  Random rng(7);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.Zipf(100, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    counts[v]++;
  }
  // Rank 1 must dominate rank 50 under strong skew.
  EXPECT_GT(counts[1], counts[50] * 3);
}

TEST(RandomTest, ZipfThetaZeroIsUniformish) {
  Random rng(9);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 30000; ++i) counts[rng.Zipf(10, 0.0)]++;
  for (int64_t k = 1; k <= 10; ++k) {
    EXPECT_GT(counts[k], 1500) << "value " << k;
  }
}

TEST(RandomTest, Weighted) {
  Random rng(11);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Weighted(w), 1u);
  }
}

TEST(RandomTest, AlphaString) {
  Random rng(3);
  std::string s = rng.AlphaString(12);
  EXPECT_EQ(s.size(), 12u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Random rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(HashTest, BytesStable) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashBytes("a"), HashBytes("b")),
            HashCombine(HashBytes("b"), HashBytes("a")));
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  std::atomic<int> sum{0};
  WaitGroup wg;
  wg.Add(100);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&sum, &wg, i] {
      sum.fetch_add(i);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(&pool, visits.size(),
              [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForNullPoolRunsSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](size_t i) {
    // No pool: the loop runs on the caller, in order, so this unlocked
    // mutation is safe and the order is deterministic.
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n == 1 runs inline on the caller.
  ParallelFor(&pool, 1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops) {
  ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    ParallelFor(&pool, 64, [&](size_t i) {
      sum.fetch_add(static_cast<int>(i) + round);
    });
    EXPECT_EQ(sum.load(), 63 * 64 / 2 + 64 * round);
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolDegradesToSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  int calls = 0;
  ParallelFor(&pool, 10, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPoolTest, CancelPredicateStopsClaimingAndRunsUnlocked) {
  ThreadPool pool(3);
  std::atomic<int> started{0};
  std::atomic<int> polls{0};
  // Cancel after a few iterations; the predicate observes (via the pool's
  // public probe, backing the DTA_CHECK inside ParallelFor) that it is
  // never invoked while the calling thread holds the pool queue lock —
  // the latent self-deadlock class the annotations close statically.
  ParallelFor(
      &pool, 1000, [&](size_t) { started.fetch_add(1); },
      [&] {
        EXPECT_FALSE(pool.QueueLockHeldByCurrentThread());
        polls.fetch_add(1);
        return started.load() >= 8;
      });
  EXPECT_GE(polls.load(), 1);
  // Iterations already claimed run to completion; unclaimed slots don't.
  EXPECT_LT(started.load(), 1000);
}

TEST(ThreadPoolTest, TasksNeverObserveQueueLockHeld) {
  ThreadPool pool(2);
  std::atomic<bool> held{false};
  WaitGroup wg;
  wg.Add(8);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      if (pool.QueueLockHeldByCurrentThread()) held.store(true);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_FALSE(held.load());
}

TEST(MutexTest, OwnerTrackingIsPerThread) {
  Mutex mu;  // lint: unguarded-mutex (the raw Mutex API is the test subject)
  EXPECT_FALSE(mu.HeldByCurrentThread());
  {
    MutexLock lock(mu);
    EXPECT_TRUE(mu.HeldByCurrentThread());
    mu.AssertHeld();  // must not abort
    // Another thread must not think it holds the mutex.
    bool other_held = true;
    std::thread probe([&] { other_held = mu.HeldByCurrentThread(); });
    probe.join();
    EXPECT_FALSE(other_held);
  }
  EXPECT_FALSE(mu.HeldByCurrentThread());
}

TEST(MutexTest, CondVarWaitReleasesAndReacquires) {
  Mutex mu;  // lint: unguarded-mutex (the raw Mutex API is the test subject)
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // Wait re-acquired the mutex before returning.
    EXPECT_TRUE(mu.HeldByCurrentThread());
  });
  {
    MutexLock lock(mu);  // acquirable: the waiter released it inside Wait
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
}

}  // namespace
}  // namespace dta
