#include <gtest/gtest.h>

#include "xmlio/xml.h"

namespace dta::xml {
namespace {

TEST(XmlElementTest, AttributesSetAndGet) {
  Element e("Server");
  e.SetAttr("Name", "prod01");
  e.SetAttr("Name", "prod02");  // overwrite
  e.SetAttr("Port", "1433");
  EXPECT_EQ(e.Attr("Name"), "prod02");
  EXPECT_EQ(e.Attr("Port"), "1433");
  EXPECT_EQ(e.Attr("missing"), "");
  EXPECT_TRUE(e.HasAttr("Port"));
  EXPECT_FALSE(e.HasAttr("port"));  // case-sensitive attrs
  EXPECT_EQ(e.attrs().size(), 2u);
}

TEST(XmlElementTest, ChildNavigation) {
  Element root("DTAXML");
  root.AddChild("Input");
  Element* out = root.AddChild("Output");
  out->AddTextChild("Cost", "123.5");
  out->AddTextChild("Cost", "99");
  EXPECT_NE(root.FindChild("Input"), nullptr);
  EXPECT_EQ(root.FindChild("nope"), nullptr);
  EXPECT_EQ(root.FindChildren("Output").size(), 1u);
  EXPECT_EQ(out->FindChildren("Cost").size(), 2u);
  EXPECT_EQ(out->ChildText("Cost"), "123.5");
  EXPECT_EQ(out->ChildText("none"), "");
}

TEST(XmlEscapeTest, AllFiveEntities) {
  EXPECT_EQ(Escape("a&b<c>d\"e'f"), "a&amp;b&lt;c&gt;d&quot;e&apos;f");
}

TEST(XmlRoundTripTest, SerializeThenParse) {
  Element root("Workload");
  root.SetAttr("events", "3");
  Element* s = root.AddChild("Statement");
  s->SetAttr("weight", "2.5");
  s->set_text("SELECT * FROM t WHERE a < 10 AND b = 'x&y'");
  root.AddTextChild("Note", "hand-tuned <design>");

  std::string text = root.ToString(/*prolog=*/true);
  auto parsed = Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Element& r = **parsed;
  EXPECT_EQ(r.name(), "Workload");
  EXPECT_EQ(r.Attr("events"), "3");
  ASSERT_NE(r.FindChild("Statement"), nullptr);
  EXPECT_EQ(r.FindChild("Statement")->Attr("weight"), "2.5");
  EXPECT_EQ(r.FindChild("Statement")->text(),
            "SELECT * FROM t WHERE a < 10 AND b = 'x&y'");
  EXPECT_EQ(r.ChildText("Note"), "hand-tuned <design>");
}

TEST(XmlParseTest, SelfClosingAndNesting) {
  auto r = Parse("<a><b x='1'/><b x=\"2\"><c/></b></a>");
  ASSERT_TRUE(r.ok());
  auto bs = (*r)->FindChildren("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->Attr("x"), "1");
  EXPECT_EQ(bs[1]->Attr("x"), "2");
  EXPECT_NE(bs[1]->FindChild("c"), nullptr);
}

TEST(XmlParseTest, SkipsPrologAndComments) {
  auto r = Parse(
      "<?xml version=\"1.0\"?>\n<!-- header comment -->\n"
      "<root><!-- inner --><x/></root>\n<!-- trailing -->");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE((*r)->FindChild("x"), nullptr);
}

TEST(XmlParseTest, EntityDecoding) {
  auto r = Parse("<t a='&lt;&amp;&gt;'>x &quot;y&quot; &apos;z&apos;</t>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Attr("a"), "<&>");
  EXPECT_EQ((*r)->text(), "x \"y\" 'z'");
}

TEST(XmlParseTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("plain text").ok());
  EXPECT_FALSE(Parse("<a>").ok());
  EXPECT_FALSE(Parse("<a></b>").ok());
  EXPECT_FALSE(Parse("<a x=1/>").ok());            // unquoted attr
  EXPECT_FALSE(Parse("<a>&unknown;</a>").ok());    // bad entity
  EXPECT_FALSE(Parse("<a/><b/>").ok());            // two roots
}

TEST(XmlParseTest, WhitespaceAroundTextIsTrimmed) {
  auto r = Parse("<t>\n   hello world   \n</t>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->text(), "hello world");
}

}  // namespace
}  // namespace dta::xml
