#include <gtest/gtest.h>

#include "common/strings.h"
#include "server/server.h"
#include "sql/parser.h"

namespace dta::server {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

std::unique_ptr<Server> MakeServer(bool with_data,
                                   optimizer::HardwareParams hw = {}) {
  auto server = std::make_unique<Server>("prod", hw);
  TableSchema t("sales", {{"s_id", ColumnType::kInt, 8},
                          {"s_region", ColumnType::kInt, 8},
                          {"s_amount", ColumnType::kDouble, 8}});
  t.set_row_count(5000);
  t.SetPrimaryKey({"s_id"});
  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(t).ok());
  EXPECT_TRUE(server->AttachDatabase(std::move(db)).ok());

  std::vector<storage::ColumnSpec> specs = {
      storage::ColumnSpec::Sequential(),
      storage::ColumnSpec::UniformInt(1, 50),
      storage::ColumnSpec::UniformReal(0, 1000)};
  if (with_data) {
    Random rng(3);
    storage::TableGenSpec spec;
    spec.schema = t;
    spec.column_specs = specs;
    spec.rows = 5000;
    auto data = storage::GenerateTable(spec, &rng);
    EXPECT_TRUE(data.ok());
    EXPECT_TRUE(server->AttachTableData("shop", std::move(data).value()).ok());
  } else {
    EXPECT_TRUE(server->RegisterColumnSpecs("shop", "sales", specs).ok());
  }
  return server;
}

sql::Statement Q(const char* text) {
  auto r = sql::ParseStatement(text);
  EXPECT_TRUE(r.ok()) << text;
  return std::move(r).value();
}

TEST(ServerTest, AttachValidation) {
  Server s("x", {});
  TableSchema t("t", {{"a", ColumnType::kInt, 8}});
  t.set_row_count(10);
  catalog::Database db("d");
  ASSERT_TRUE(db.AddTable(t).ok());
  ASSERT_TRUE(s.AttachDatabase(std::move(db)).ok());
  // Row-count mismatch is rejected.
  storage::TableData wrong(t);
  ASSERT_TRUE(wrong.AppendRow({sql::Value::Int(1)}).ok());
  EXPECT_FALSE(s.AttachTableData("d", std::move(wrong)).ok());
  // Spec arity mismatch is rejected.
  EXPECT_FALSE(s.RegisterColumnSpecs("d", "t", {}).ok());
}

TEST(ServerTest, CreateStatisticsFromData) {
  auto s = MakeServer(/*with_data=*/true);
  stats::StatsKey key("shop", "sales", {"s_region"});
  EXPECT_FALSE(s->HasStatistics(key));
  auto d = s->CreateStatistics(key);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_GT(*d, 0);
  EXPECT_TRUE(s->HasStatistics(key));
  // Idempotent and free the second time.
  auto d2 = s->CreateStatistics(key);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d2, 0);
}

TEST(ServerTest, CreateStatisticsFromSpecs) {
  auto s = MakeServer(/*with_data=*/false);
  stats::StatsKey key("shop", "sales", {"s_region", "s_amount"});
  auto d = s->CreateStatistics(key);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  const stats::Statistics* st = s->stats_manager().Find(key);
  ASSERT_NE(st, nullptr);
  EXPECT_NEAR(st->prefix_distinct[0], 50, 10);
}

TEST(ServerTest, CreateStatisticsWithoutDataOrSpecsFails) {
  Server s("bare", {});
  TableSchema t("t", {{"a", ColumnType::kInt, 8}});
  t.set_row_count(100);
  catalog::Database db("d");
  ASSERT_TRUE(db.AddTable(t).ok());
  ASSERT_TRUE(s.AttachDatabase(std::move(db)).ok());
  EXPECT_FALSE(s.CreateStatistics(stats::StatsKey("d", "t", {"a"})).ok());
}

TEST(ServerTest, StatisticsImportExport) {
  auto prod = MakeServer(/*with_data=*/true);
  ASSERT_TRUE(
      prod->CreateStatistics(stats::StatsKey("shop", "sales", {"s_region"}))
          .ok());
  ASSERT_TRUE(
      prod->CreateStatistics(stats::StatsKey("shop", "sales", {"s_id"}))
          .ok());

  auto test = Server::FromMetadataScript(prod->ScriptMetadata(), "test",
                                         optimizer::HardwareParams());
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  EXPECT_EQ((*test)->stats_manager().size(), 0u);
  for (const stats::Statistics* st : prod->ExportStatistics()) {
    (*test)->ImportStatistics(*st);
  }
  EXPECT_EQ((*test)->stats_manager().size(), 2u);
  // Import accrues no overhead on either server beyond what creation did.
  double before = (*test)->overhead_ms();
  EXPECT_EQ(before, 0);
}

TEST(ServerTest, MetadataScriptRoundTrip) {
  auto prod = MakeServer(/*with_data=*/true);
  std::string script = prod->ScriptMetadata();
  EXPECT_NE(script.find("sales"), std::string::npos);
  EXPECT_NE(script.find("RowCount"), std::string::npos);

  auto test = Server::FromMetadataScript(script, "test", {});
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  auto resolved = (*test)->catalog().ResolveTable("shop", "sales");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->table->row_count(), 5000u);
  EXPECT_EQ(resolved->table->columns().size(), 3u);
  EXPECT_EQ(resolved->table->primary_key().size(), 1u);
  // Metadata-only server has no data.
  EXPECT_EQ((*test)->Table("shop", "sales"), nullptr);
}

TEST(ServerTest, WhatIfCostAndOverheadAccrual) {
  auto s = MakeServer(/*with_data=*/true);
  s->ResetOverhead();
  sql::Statement q = Q("SELECT s_amount FROM sales WHERE s_id = 7");
  auto raw = s->WhatIfCost(q, Configuration());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_GT(s->overhead_ms(), 0);
  EXPECT_EQ(s->whatif_call_count(), 1u);

  Configuration config;
  ASSERT_TRUE(
      config.AddIndex(IndexDef{.table = "sales", .key_columns = {"s_id"}})
          .ok());
  auto indexed = s->WhatIfCost(q, config);
  ASSERT_TRUE(indexed.ok());
  EXPECT_LT(indexed->cost, raw->cost);
  EXPECT_EQ(s->whatif_call_count(), 2u);
}

TEST(ServerTest, WhatIfReportsMissingStatistics) {
  auto s = MakeServer(/*with_data=*/true);
  sql::Statement q = Q("SELECT s_amount FROM sales WHERE s_region = 3");
  auto r = s->WhatIfCost(q, Configuration());
  ASSERT_TRUE(r.ok());
  bool wants_region = false;
  for (const auto& k : r->missing_stats) {
    if (k.columns == std::vector<std::string>{"s_region"}) {
      wants_region = true;
    }
  }
  EXPECT_TRUE(wants_region);
  // After creating the statistic, it is no longer reported missing.
  ASSERT_TRUE(
      s->CreateStatistics(stats::StatsKey("shop", "sales", {"s_region"}))
          .ok());
  auto r2 = s->WhatIfCost(q, Configuration());
  ASSERT_TRUE(r2.ok());
  for (const auto& k : r2->missing_stats) {
    EXPECT_NE(k.columns, std::vector<std::string>{"s_region"});
  }
}

TEST(ServerTest, WhatIfWithSimulatedHardware) {
  // Hardware differences show up on large tables (parallelism, memory);
  // use a big metadata-only table.
  auto test_server = std::make_unique<Server>(
      "test", optimizer::HardwareParams::TestClass());
  TableSchema big("sales", {{"s_id", ColumnType::kInt, 8},
                            {"s_region", ColumnType::kInt, 8},
                            {"s_amount", ColumnType::kDouble, 8}});
  big.set_row_count(80000000);  // ~2.6 GB
  catalog::Database db("shop");
  ASSERT_TRUE(db.AddTable(big).ok());
  ASSERT_TRUE(test_server->AttachDatabase(std::move(db)).ok());
  sql::Statement q =
      Q("SELECT s_region, COUNT(*) FROM sales GROUP BY s_region");
  auto own = test_server->WhatIfCost(q, Configuration());
  ASSERT_TRUE(own.ok());
  optimizer::HardwareParams prod_hw =
      optimizer::HardwareParams::ProductionClass();
  auto simulated = test_server->WhatIfCost(q, Configuration(), &prod_hw);
  ASSERT_TRUE(simulated.ok());
  // Production hardware is faster: simulated costs must be lower.
  EXPECT_LT(simulated->cost, own->cost);
}

TEST(ServerTest, ImplementAndExecute) {
  auto s = MakeServer(/*with_data=*/true);
  Configuration config;
  ASSERT_TRUE(
      config.AddIndex(IndexDef{.table = "sales", .key_columns = {"s_id"}})
          .ok());
  ASSERT_TRUE(s->ImplementConfiguration(config).ok());
  sql::Statement q = Q("SELECT s_amount FROM sales WHERE s_id = 42");
  double elapsed = -1;
  auto r = s->ExecuteSelect(q.select(), &elapsed);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1u);
  EXPECT_GE(elapsed, 0);
}

TEST(ServerTest, ExecutionFailsOnMetadataOnlyServer) {
  auto s = MakeServer(/*with_data=*/false);
  sql::Statement q = Q("SELECT s_amount FROM sales WHERE s_id = 42");
  EXPECT_FALSE(s->ExecuteSelect(q.select()).ok());
}

TEST(ServerTest, OverheadResetAndGrowth) {
  auto s = MakeServer(/*with_data=*/true);
  sql::Statement q = Q("SELECT COUNT(*) FROM sales");
  ASSERT_TRUE(s->WhatIfCost(q, Configuration()).ok());
  double once = s->overhead_ms();
  ASSERT_TRUE(s->WhatIfCost(q, Configuration()).ok());
  EXPECT_GT(s->overhead_ms(), once);
  s->ResetOverhead();
  EXPECT_EQ(s->overhead_ms(), 0);
  EXPECT_EQ(s->whatif_call_count(), 0u);
}

}  // namespace
}  // namespace dta::server
