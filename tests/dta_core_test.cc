// Unit tests for DTA's building blocks: Greedy(m,k), reduced statistics,
// column-group restriction, candidate generation, merging, cost service,
// and enumeration.

#include <gtest/gtest.h>

#include <cmath>

#include "common/strings.h"
#include "dta/candidates.h"
#include "dta/column_groups.h"
#include "dta/cost_service.h"
#include "dta/enumeration.h"
#include "dta/greedy.h"
#include "dta/merging.h"
#include "dta/reduced_stats.h"
#include "sql/parser.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::PartitionScheme;
using catalog::TableSchema;

// ---------------------------------------------------------------- greedy

TEST(GreedyTest, FindsSingleBestCandidate) {
  // Candidate 2 reduces cost the most.
  auto eval = [](const std::vector<size_t>& s) -> Result<double> {
    double cost = 100;
    for (size_t i : s) cost -= (i == 2 ? 50 : 10);
    return cost;
  };
  GreedyResult r = GreedySearch(5, 1, 1, 100, eval);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 2u);
  EXPECT_DOUBLE_EQ(r.cost, 50);
}

TEST(GreedyTest, GreedyExtendsWhileImproving) {
  auto eval = [](const std::vector<size_t>& s) -> Result<double> {
    // Diminishing but positive benefit for first three candidates only.
    double cost = 100;
    for (size_t i : s) {
      if (i < 3) cost -= 20 - 5 * static_cast<double>(i);
    }
    return cost;
  };
  GreedyResult r = GreedySearch(6, 1, 10, 100, eval);
  EXPECT_EQ(r.chosen.size(), 3u);
  EXPECT_DOUBLE_EQ(r.cost, 100 - 20 - 15 - 10);
}

TEST(GreedyTest, RespectsK) {
  auto eval = [](const std::vector<size_t>& s) -> Result<double> {
    return 100 - static_cast<double>(s.size());
  };
  GreedyResult r = GreedySearch(10, 1, 4, 100, eval);
  EXPECT_EQ(r.chosen.size(), 4u);
}

TEST(GreedyTest, MEqualsTwoFindsInteractingPair) {
  // Candidates 1 and 3 only help together; alone they hurt.
  auto eval = [](const std::vector<size_t>& s) -> Result<double> {
    bool has1 = std::find(s.begin(), s.end(), 1u) != s.end();
    bool has3 = std::find(s.begin(), s.end(), 3u) != s.end();
    if (has1 && has3) return 40.0;
    if (has1 || has3) return 110.0;
    return 100.0;
  };
  GreedyResult greedy_only = GreedySearch(5, 1, 5, 100, eval);
  EXPECT_TRUE(greedy_only.chosen.empty());  // m=1 cannot find the pair
  GreedyResult with_m2 = GreedySearch(5, 2, 5, 100, eval);
  EXPECT_EQ(with_m2.chosen.size(), 2u);
  EXPECT_DOUBLE_EQ(with_m2.cost, 40.0);
}

TEST(GreedyTest, SkipsInfeasibleSubsets) {
  auto eval = [](const std::vector<size_t>& s) -> Result<double> {
    for (size_t i : s) {
      if (i == 0) return Status::OutOfRange("infeasible");
    }
    return 100 - 10 * static_cast<double>(s.size());
  };
  GreedyResult r = GreedySearch(3, 1, 3, 100, eval);
  EXPECT_EQ(std::find(r.chosen.begin(), r.chosen.end(), 0u),
            r.chosen.end());
  EXPECT_EQ(r.chosen.size(), 2u);
}

TEST(GreedyTest, StopsOnRequest) {
  int calls = 0;
  auto eval = [&](const std::vector<size_t>&) -> Result<double> {
    ++calls;
    return 100.0 - calls;
  };
  auto stop = [&]() { return calls >= 3; };
  GreedyResult r = GreedySearch(100, 1, 100, 100, eval, stop);
  EXPECT_LE(r.evaluations, 4u);
}

// ---------------------------------------------------------- reduced stats

stats::StatsKey K(std::vector<std::string> cols) {
  return stats::StatsKey("db", "t", std::move(cols));
}

TEST(ReducedStatsTest, PaperExample3) {
  // S = {(A), (B), (A,B), (B,A), (A,B,C)}  ==>  create {(A,B,C), (B)}.
  std::set<stats::StatsKey> requested = {K({"a"}), K({"b"}), K({"a", "b"}),
                                         K({"b", "a"}), K({"a", "b", "c"})};
  StatsCreationPlan plan = PlanReducedStatistics(requested);
  EXPECT_EQ(plan.naive_count, 5u);
  ASSERT_EQ(plan.to_create.size(), 2u);
  // Greedy picks (A,B,C) first (covers H:a and D:{a},{ab},{abc}), then (B)
  // or (B,A) — both cover H:b and D:{b}; (B,A)'s extra density {a,b} is
  // already covered so the tie-break prefers the wider one.
  EXPECT_EQ(plan.to_create[0].columns,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(plan.to_create[1].columns[0], "b");
}

TEST(ReducedStatsTest, DensityOrderInsensitive) {
  // (A,B) and (B,A) need two creations (two histograms) but either one
  // covers both density sets.
  std::set<stats::StatsKey> requested = {K({"a", "b"}), K({"b", "a"})};
  StatsCreationPlan plan = PlanReducedStatistics(requested);
  EXPECT_EQ(plan.to_create.size(), 2u);

  // With histogram on A already present via existing stats, only (B,...)
  // is created.
  stats::Statistics existing;
  existing.key = K({"a", "b"});
  existing.prefix_distinct = {10, 100};
  StatsCreationPlan plan2 =
      PlanReducedStatistics(requested, {&existing});
  ASSERT_EQ(plan2.to_create.size(), 1u);
  EXPECT_EQ(plan2.to_create[0].columns[0], "b");
}

TEST(ReducedStatsTest, EmptyAndSingleton) {
  EXPECT_TRUE(PlanReducedStatistics({}).to_create.empty());
  StatsCreationPlan p = PlanReducedStatistics({K({"x"})});
  ASSERT_EQ(p.to_create.size(), 1u);
  EXPECT_EQ(p.naive_count, 1u);
}

TEST(ReducedStatsTest, PrefixSubsumption) {
  // (A) and (A,B): creating (A,B) covers everything.
  std::set<stats::StatsKey> requested = {K({"a"}), K({"a", "b"})};
  StatsCreationPlan plan = PlanReducedStatistics(requested);
  ASSERT_EQ(plan.to_create.size(), 1u);
  EXPECT_EQ(plan.to_create[0].columns,
            (std::vector<std::string>{"a", "b"}));
}

// --------------------------------------------------------- column groups

workload::Workload MakeGroupWorkload() {
  // 10 expensive statements touch (a,b); 1 cheap statement touches (c).
  workload::Workload w;
  for (int i = 0; i < 10; ++i) {
    auto s = sql::ParseStatement(
        StrFormat("SELECT a FROM t WHERE a = %d AND b < 5", i));
    w.Add(std::move(s).value());
  }
  auto cheap = sql::ParseStatement("SELECT a FROM t WHERE c = 1");
  w.Add(std::move(cheap).value());
  return w;
}

catalog::Catalog MakeGroupCatalog() {
  TableSchema t("t", {{"a", ColumnType::kInt, 8},
                      {"b", ColumnType::kInt, 8},
                      {"c", ColumnType::kInt, 8}});
  t.set_row_count(10000);
  catalog::Database db("db");
  EXPECT_TRUE(db.AddTable(t).ok());
  catalog::Catalog cat;
  EXPECT_TRUE(cat.AddDatabase(std::move(db)).ok());
  return cat;
}

TEST(ColumnGroupsTest, FrequentGroupsSurvive) {
  catalog::Catalog cat = MakeGroupCatalog();
  workload::Workload w = MakeGroupWorkload();
  std::vector<double> costs(w.size(), 1.0);
  auto groups = ComputeInterestingColumnGroups(w, costs, cat, 0.2, 3);
  ASSERT_TRUE(groups.ok()) << groups.status().ToString();
  EXPECT_TRUE(groups->Contains("db", "t", {"a"}));
  EXPECT_TRUE(groups->Contains("db", "t", {"b"}));
  EXPECT_TRUE(groups->Contains("db", "t", {"a", "b"}));
  EXPECT_TRUE(groups->Contains("db", "t", {"b", "a"}));  // set semantics
  // The cheap column is below 20% of workload cost.
  EXPECT_FALSE(groups->Contains("db", "t", {"c"}));
  EXPECT_FALSE(groups->Contains("db", "t", {"a", "c"}));
}

TEST(ColumnGroupsTest, CostWeightingMatters) {
  catalog::Catalog cat = MakeGroupCatalog();
  workload::Workload w = MakeGroupWorkload();
  // Make the 'c' statement dominate by cost.
  std::vector<double> costs(w.size(), 1.0);
  costs.back() = 100.0;
  auto groups = ComputeInterestingColumnGroups(w, costs, cat, 0.2, 3);
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(groups->Contains("db", "t", {"c"}));
  EXPECT_FALSE(groups->Contains("db", "t", {"a"}));
}

TEST(ColumnGroupsTest, UnrestrictedAdmitsEverything) {
  auto groups = InterestingColumnGroups::Unrestricted();
  EXPECT_TRUE(groups.Contains("any", "thing", {"x", "y", "z"}));
}

TEST(ColumnGroupsTest, DisabledThresholdMeansUnrestricted) {
  catalog::Catalog cat = MakeGroupCatalog();
  workload::Workload w = MakeGroupWorkload();
  std::vector<double> costs(w.size(), 1.0);
  auto groups = ComputeInterestingColumnGroups(w, costs, cat, 0.0, 3);
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(groups->unrestricted());
}

TEST(ColumnGroupsTest, AnalyzeStatementColumns) {
  catalog::Catalog cat = MakeGroupCatalog();
  auto stmt = sql::ParseStatement(
      "SELECT a FROM t WHERE b = 1 GROUP BY a ORDER BY a");
  auto usage = AnalyzeStatementColumns(*stmt, cat);
  ASSERT_TRUE(usage.ok());
  ASSERT_EQ(usage->tables.size(), 1u);
  EXPECT_EQ(usage->tables[0].columns.size(), 2u);  // a (group/order), b

  auto upd = sql::ParseStatement("UPDATE t SET c = 1 WHERE a = 2");
  auto uusage = AnalyzeStatementColumns(*upd, cat);
  ASSERT_TRUE(uusage.ok());
  ASSERT_EQ(uusage->tables.size(), 1u);
  EXPECT_EQ(uusage->tables[0].columns.count("a"), 1u);
}

// ------------------------------------------------------------- merging

TEST(MergingTest, MergeIndexes) {
  IndexDef a{.table = "t", .key_columns = {"x", "y"},
             .included_columns = {"p"}};
  IndexDef b{.table = "t", .key_columns = {"x", "z"},
             .included_columns = {"q"}};
  auto merged = MergeIndexes(a, b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->key_columns, (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_EQ(merged->included_columns, (std::vector<std::string>{"p", "q"}));

  // Different tables do not merge.
  IndexDef c{.table = "u", .key_columns = {"x"}};
  EXPECT_FALSE(MergeIndexes(a, c).has_value());
  // Clustered indexes do not merge.
  IndexDef d{.table = "t", .key_columns = {"x"}, .clustered = true};
  EXPECT_FALSE(MergeIndexes(a, d).has_value());
  // Width cap.
  IndexDef wide{.table = "t",
                .key_columns = {"c1", "c2", "c3", "c4", "c5", "c6"}};
  EXPECT_FALSE(MergeIndexes(a, wide).has_value());
  // Merging an index with itself yields nothing new.
  EXPECT_FALSE(MergeIndexes(a, a).has_value());
}

TEST(MergingTest, MergePartitionSchemes) {
  PartitionScheme a{.column = "d",
                    .boundaries = {sql::Value::Int(10), sql::Value::Int(30)}};
  PartitionScheme b{.column = "d",
                    .boundaries = {sql::Value::Int(20), sql::Value::Int(30)}};
  auto merged = MergePartitionSchemes(a, b);
  ASSERT_TRUE(merged.has_value());
  ASSERT_EQ(merged->boundaries.size(), 3u);
  EXPECT_EQ(merged->boundaries[0].AsInt(), 10);
  EXPECT_EQ(merged->boundaries[1].AsInt(), 20);
  EXPECT_EQ(merged->boundaries[2].AsInt(), 30);

  PartitionScheme other{.column = "e", .boundaries = {sql::Value::Int(1)}};
  EXPECT_FALSE(MergePartitionSchemes(a, other).has_value());
  EXPECT_FALSE(MergePartitionSchemes(a, a).has_value());
}

}  // namespace
}  // namespace dta::tuner
