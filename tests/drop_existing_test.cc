// Tests for re-justification of existing structures: DTA's default
// behaviour treats the current design's non-constraint structures as
// ordinary candidates, so harmful structures are implicitly dropped, while
// keep_existing_structures pins them.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "dta/tuning_session.h"
#include "server/server.h"
#include "storage/datagen.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

std::unique_ptr<server::Server> MakeServer() {
  auto s = std::make_unique<server::Server>("prod",
                                            optimizer::HardwareParams());
  TableSchema t("t", {{"id", ColumnType::kInt, 8},
                      {"k", ColumnType::kInt, 8},
                      {"junk", ColumnType::kString, 14},
                      {"v", ColumnType::kDouble, 8}});
  t.set_row_count(50000);
  t.SetPrimaryKey({"id"});
  catalog::Database db("d");
  EXPECT_TRUE(db.AddTable(t).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());
  Random rng(5);
  storage::TableGenSpec spec;
  spec.schema = t;
  spec.column_specs = {storage::ColumnSpec::Sequential(),
                       storage::ColumnSpec::UniformInt(1, 500),
                       storage::ColumnSpec::StringPool("j", 1000),
                       storage::ColumnSpec::UniformReal(0, 100)};
  spec.rows = 50000;
  auto data = storage::GenerateTable(spec, &rng);
  EXPECT_TRUE(data.ok());
  EXPECT_TRUE(s->AttachTableData("d", std::move(data).value()).ok());
  return s;
}

// Current design: PK index (constraint) + a useful index on k + a harmful
// wide index on a never-queried column of an update-hot table.
Configuration CurrentDesign() {
  Configuration c;
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "t",
                                  .key_columns = {"id"},
                                  .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "t",
                                  .key_columns = {"k"},
                                  .included_columns = {"v"}})
                  .ok());
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "t",
                                  .key_columns = {"junk"},
                                  .included_columns = {"v", "k"}})
                  .ok());
  return c;
}

workload::Workload MakeWorkload() {
  std::string script;
  for (int i = 0; i < 12; ++i) {
    script += StrFormat("SELECT v FROM t WHERE k = %d;", i * 37 + 1);
    script += StrFormat("UPDATE t SET v = %d WHERE id = %d;", i, i * 991);
  }
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok());
  return std::move(w).value();
}

std::string JunkIndexName() {
  return IndexDef{.table = "t",
                  .key_columns = {"junk"},
                  .included_columns = {"v", "k"}}
      .CanonicalName();
}
std::string UsefulIndexName() {
  return IndexDef{.table = "t",
                  .key_columns = {"k"},
                  .included_columns = {"v"}}
      .CanonicalName();
}

TEST(DropExistingTest, HarmfulStructureIsDropped) {
  auto server = MakeServer();
  ASSERT_TRUE(server->ImplementConfiguration(CurrentDesign()).ok());
  TuningOptions opts;  // default: re-justify existing structures
  TuningSession session(server.get(), opts);
  auto r = session.Tune(MakeWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The junk index never helps a query and costs every update: dropped.
  EXPECT_FALSE(r->recommendation.ContainsStructure(JunkIndexName()))
      << r->recommendation.Fingerprint();
  // The useful index pays for itself: retained (possibly in merged form —
  // require at least that SOME index leads on k).
  bool has_k_index = false;
  for (const auto& ix : r->recommendation.indexes()) {
    if (!ix.key_columns.empty() && ix.key_columns[0] == "k") {
      has_k_index = true;
    }
  }
  EXPECT_TRUE(has_k_index) << r->recommendation.Fingerprint();
  // Dropping the junk index means the recommendation beats the current
  // design, not just the raw one.
  EXPECT_GT(r->ImprovementPercent(), 0);
}

TEST(DropExistingTest, KeepExistingPinsEverything) {
  auto server = MakeServer();
  ASSERT_TRUE(server->ImplementConfiguration(CurrentDesign()).ok());
  TuningOptions opts;
  opts.keep_existing_structures = true;
  TuningSession session(server.get(), opts);
  auto r = session.Tune(MakeWorkload());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->recommendation.ContainsStructure(JunkIndexName()));
  EXPECT_TRUE(r->recommendation.ContainsStructure(UsefulIndexName()));
}

TEST(DropExistingTest, ConstraintIndexesNeverDropped) {
  auto server = MakeServer();
  ASSERT_TRUE(server->ImplementConfiguration(CurrentDesign()).ok());
  TuningSession session(server.get(), TuningOptions());
  auto r = session.Tune(MakeWorkload());
  ASSERT_TRUE(r.ok());
  bool has_pk = false;
  for (const auto& ix : r->recommendation.indexes()) {
    if (ix.constraint_enforcing) has_pk = true;
  }
  EXPECT_TRUE(has_pk);
}

}  // namespace
}  // namespace dta::tuner
