// Robustness tests for the fault-tolerant what-if costing path: FaultSpec
// parsing, FaultInjector determinism, retry/backoff under transient faults
// (including deadline-capped retries), graceful degradation to the heuristic
// estimate, and end-to-end tuning under scripted fault profiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "dta/cost_service.h"
#include "dta/tuning_session.h"
#include "optimizer/cost_model.h"
#include "optimizer/heuristic_cost.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as parallel_tuning_test: two joinable tables with
// real data.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SeedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "INSERT INTO orders (o_id, o_cust, o_date, o_price) VALUES "
      "(31000, 5, '1996-01-01', 10.5);"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

std::vector<std::string> StructureNames(const Configuration& c) {
  std::vector<std::string> out;
  for (const auto& ix : c.indexes()) out.push_back(ix.CanonicalName());
  for (const auto& v : c.views()) out.push_back(v.CanonicalName());
  for (const auto& [table, scheme] : c.table_partitioning()) {
    out.push_back("tp:" + table + ":" + scheme.CanonicalString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------ FaultSpec

TEST(FaultSpecTest, ParsesAndRoundTrips) {
  auto spec = FaultSpec::Parse(
      "seed=42,transient=0.1,permanent=0.01,latency_ms=0.5");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_DOUBLE_EQ(spec->transient_probability, 0.1);
  EXPECT_DOUBLE_EQ(spec->permanent_probability, 0.01);
  EXPECT_DOUBLE_EQ(spec->latency_ms, 0.5);
  EXPECT_TRUE(spec->Enabled());

  auto round = FaultSpec::Parse(spec->ToString());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->seed, spec->seed);
  EXPECT_DOUBLE_EQ(round->transient_probability, spec->transient_probability);
  EXPECT_DOUBLE_EQ(round->permanent_probability, spec->permanent_probability);
  EXPECT_DOUBLE_EQ(round->latency_ms, spec->latency_ms);
}

TEST(FaultSpecTest, RejectsBadInput) {
  EXPECT_FALSE(FaultSpec::Parse("transient=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("permanent=-0.1").ok());
  EXPECT_FALSE(FaultSpec::Parse("bogus_key=1").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient=abc").ok());

  auto empty = FaultSpec::Parse("");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->Enabled());
}

// The parser consumes values strictly: trailing garbage, embedded
// whitespace, signs, incomplete exponents, and non-finite literals are all
// rejected rather than silently truncated the way strtod alone would.
TEST(FaultSpecTest, RejectsTrailingGarbageAndLooseNumbers) {
  EXPECT_FALSE(FaultSpec::Parse("transient=0.3x").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed=42abc").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed= 42").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed=42 ").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed=+42").ok());
  EXPECT_FALSE(FaultSpec::Parse("seed=-1").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency_ms=+0.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency_ms=1e").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency_ms=1e999").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency_ms=inf").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency_ms=nan").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency_ms=0x1p3").ok());
  EXPECT_FALSE(FaultSpec::Parse("down_after=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("down_after=-2").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient=").ok());
  EXPECT_FALSE(FaultSpec::Parse("=0.3").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient").ok());
  // Unknown keys fail loudly — a typo must not silently disable the fault.
  EXPECT_FALSE(FaultSpec::Parse("transeint=0.3").ok());
  EXPECT_FALSE(FaultSpec::Parse("transient=0.3,extra=1").ok());
}

TEST(FaultSpecTest, RejectsBadFailSlowAndTableValues) {
  EXPECT_FALSE(FaultSpec::Parse("slow_factor=0.5").ok());  // must be >= 1
  EXPECT_FALSE(FaultSpec::Parse("slow_after=-2").ok());
  EXPECT_FALSE(FaultSpec::Parse("slow_after=1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("table=").ok());
  EXPECT_FALSE(FaultSpec::Parse("table=line item").ok());
  EXPECT_FALSE(FaultSpec::Parse("table='orders'").ok());

  // Table names are case-folded so the filter matches the catalog's
  // lowercased identifiers.
  auto spec = FaultSpec::Parse("table=LineItem,transient=0.3");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->table, "lineitem");
  EXPECT_TRUE(spec->Enabled());
}

// Every field — including the fail-slow window and the table filter —
// survives Parse(ToString()) unchanged, so specs can be logged and replayed.
TEST(FaultSpecTest, FullSpecRoundTrips) {
  auto spec = FaultSpec::Parse(
      "seed=9,transient=0.25,permanent=0.5,latency_ms=0.125,down_after=10,"
      "burst_start=3,burst_len=4,slow_after=5,slow_factor=200,table=lineitem");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  auto round = FaultSpec::Parse(spec->ToString());
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round->seed, 9u);
  EXPECT_DOUBLE_EQ(round->transient_probability, 0.25);
  EXPECT_DOUBLE_EQ(round->permanent_probability, 0.5);
  EXPECT_DOUBLE_EQ(round->latency_ms, 0.125);
  EXPECT_EQ(round->down_after, 10);
  EXPECT_EQ(round->burst_start, 3u);
  EXPECT_EQ(round->burst_len, 4u);
  EXPECT_EQ(round->slow_after, 5);
  EXPECT_DOUBLE_EQ(round->slow_factor, 200);
  EXPECT_EQ(round->table, "lineitem");
  EXPECT_EQ(round->ToString(), spec->ToString());

  // Disabled shapes stay out of the string form, so the default spec
  // round-trips to the same short form.
  auto minimal = FaultSpec::Parse("transient=0.1");
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->ToString().find("slow_after"), std::string::npos);
  EXPECT_EQ(minimal->ToString().find("table"), std::string::npos);
  auto again = FaultSpec::Parse(minimal->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), minimal->ToString());
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjectorTest, DecisionsAreDeterministicPerSeedAndKey) {
  FaultSpec spec;
  spec.seed = 7;
  spec.transient_probability = 0.3;
  spec.permanent_probability = 0.05;
  spec.latency_ms = 0.25;

  // Two injectors with the same spec replay the same outcome sequence for
  // the same keys, regardless of interleaving with other keys.
  FaultInjector a(spec), b(spec);
  for (uint64_t key = 1; key <= 200; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      auto oa = a.Decide(key);
      auto ob = b.Decide(key);
      EXPECT_EQ(oa.status.code(), ob.status.code())
          << "key " << key << " attempt " << attempt;
      EXPECT_EQ(oa.latency_ms, ob.latency_ms);
      EXPECT_DOUBLE_EQ(oa.latency_ms, spec.latency_ms);
    }
    // Interleave unrelated keys into `b` only; `a`'s outcomes above must
    // not depend on them (pure hash of key + attempt, no shared stream).
    b.Decide(1000000 + key);
  }
  EXPECT_EQ(a.transient_failures() > 0, true);
  EXPECT_EQ(a.permanent_failures() > 0, true);

  // A different seed produces a different failure pattern.
  spec.seed = 8;
  FaultInjector c(spec);
  size_t differing = 0;
  for (uint64_t key = 1; key <= 200; ++key) {
    if (c.Decide(key).status.code() != a.Decide(key).status.code()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultInjectorTest, PermanentFaultsStickPerKey) {
  FaultSpec spec;
  spec.seed = 3;
  spec.permanent_probability = 0.2;
  FaultInjector injector(spec);

  for (uint64_t key = 1; key <= 100; ++key) {
    Status first = injector.Decide(key).status;
    for (int attempt = 1; attempt < 4; ++attempt) {
      // Permanent faults are keyed on the call alone: every retry of a
      // permanently failing key fails identically, and a healthy key never
      // develops a permanent fault.
      EXPECT_EQ(injector.Decide(key).status.code(), first.code());
    }
  }
  EXPECT_GT(injector.permanent_failures(), 0u);
}

// ----------------------------------------------------- table targeting

TEST(FaultInjectorTest, TableFilterExemptsUnmatchedCalls) {
  FaultSpec spec;
  spec.seed = 4;
  spec.transient_probability = 1;  // every matched call fails
  spec.table = "orders";
  FaultInjector injector(spec);

  const std::set<std::string> orders = {"orders"};
  const std::set<std::string> items = {"items"};
  const std::set<std::string> both = {"items", "orders"};

  EXPECT_TRUE(injector.Decide(1, items).status.ok());
  EXPECT_FALSE(injector.Decide(1, orders).status.ok());
  EXPECT_FALSE(injector.Decide(2, both).status.ok());
  // The one-argument form carries no table set, so it can never match a
  // table-filtered spec.
  EXPECT_TRUE(injector.Decide(3).status.ok());

  EXPECT_EQ(injector.calls(), 4u);
  EXPECT_EQ(injector.skipped_calls(), 2u);
  EXPECT_EQ(injector.transient_failures(), 2u);
}

// Window shapes (down_after, bursts, slow_after) are modeled on the
// matched-call ordinal: calls the table filter exempts do not advance the
// window, so the same fault spec describes the same incident shape no
// matter how many other tables' calls interleave.
TEST(FaultInjectorTest, WindowOrdinalsCountOnlyMatchedCalls) {
  FaultSpec spec;
  spec.table = "orders";
  spec.down_after = 2;
  FaultInjector injector(spec);

  const std::set<std::string> orders = {"orders"};
  const std::set<std::string> items = {"items"};

  // Matched ordinals 0 and 1 precede the outage; unmatched calls in between
  // must not consume ordinals.
  EXPECT_TRUE(injector.Decide(1, orders).status.ok());  // ordinal 0
  for (uint64_t k = 100; k < 110; ++k) {
    EXPECT_TRUE(injector.Decide(k, items).status.ok());
  }
  EXPECT_TRUE(injector.Decide(2, orders).status.ok());   // ordinal 1
  EXPECT_FALSE(injector.Decide(3, orders).status.ok());  // ordinal 2: down
  EXPECT_TRUE(injector.Decide(4, items).status.ok());    // still exempt
  EXPECT_EQ(injector.outage_failures(), 1u);
  EXPECT_EQ(injector.skipped_calls(), 11u);
}

// -------------------------------------------------------------- fail-slow

TEST(FaultInjectorTest, FailSlowAmplifiesLatencyWithoutFailing) {
  FaultSpec spec;
  spec.latency_ms = 0.5;
  spec.slow_after = 3;
  spec.slow_factor = 10;
  EXPECT_TRUE(spec.Enabled());
  FaultInjector injector(spec);

  for (uint64_t i = 0; i < 8; ++i) {
    auto out = injector.Decide(/*key=*/i);
    EXPECT_TRUE(out.status.ok()) << "call " << i;
    if (i < 3) {
      EXPECT_DOUBLE_EQ(out.latency_ms, 0.5) << "call " << i;
    } else {
      // From ordinal slow_after onward the node is slow: responses arrive
      // latency_ms * slow_factor late but still succeed — invisible to
      // crash-stop health tracking by design.
      EXPECT_DOUBLE_EQ(out.latency_ms, 5.0) << "call " << i;
    }
  }
  EXPECT_EQ(injector.calls(), 8u);
  EXPECT_EQ(injector.slow_calls(), 5u);
  EXPECT_EQ(injector.transient_failures(), 0u);
  EXPECT_EQ(injector.outage_failures(), 0u);
}

// ------------------------------------------------------------ retries

TEST(CostServiceFaultTest, TransientFaultsAreRetriedToSuccess) {
  auto clean = MakeProduction();
  workload::Workload w = SeedWorkload();
  CostService reference(clean.get(), nullptr, &w);

  auto faulty = MakeProduction();
  FaultSpec spec;
  spec.seed = 21;
  spec.transient_probability = 0.3;
  FaultInjector injector(spec);
  faulty->set_fault_injector(&injector);

  CostService::Config config;
  config.retry.max_attempts = 16;  // 0.3^16: retries always recover
  config.retry.initial_backoff_ms = 0.01;
  config.retry.max_backoff_ms = 0.05;
  CostService service(faulty.get(), nullptr, &w, config);

  for (size_t i = 0; i < w.size(); ++i) {
    auto expected = reference.StatementCost(i, Configuration());
    auto got = service.StatementCost(i, Configuration());
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Retried calls recover the exact fault-free cost.
    EXPECT_EQ(*got, *expected) << "statement " << i;
  }
  faulty->set_fault_injector(nullptr);

  EXPECT_GT(injector.transient_failures(), 0u);
  EXPECT_EQ(service.whatif_retries(), injector.transient_failures());
  EXPECT_EQ(service.degraded_calls(), 0u);

  // The histogram accounts every pricing exactly once, and the retried
  // pricings landed in buckets beyond "1 attempt".
  auto hist = service.retry_histogram();
  size_t total = 0, beyond_first = 0;
  for (size_t n = 0; n < hist.size(); ++n) {
    total += hist[n];
    if (n > 0) beyond_first += hist[n];
  }
  EXPECT_EQ(total, service.whatif_calls());
  EXPECT_GT(beyond_first, 0u);
}

TEST(CostServiceFaultTest, DeadlineCapsRetries) {
  auto prod = MakeProduction();
  workload::Workload w = SeedWorkload();

  FaultSpec spec;
  spec.seed = 5;
  spec.transient_probability = 1;  // every attempt fails transiently
  FaultInjector injector(spec);
  prod->set_fault_injector(&injector);

  // An exhausted session budget forbids any backoff sleep, so the first
  // failure is final; without degradation the deadline surfaces directly.
  CostService::Config config;
  config.retry.initial_backoff_ms = 1;
  config.retry.jitter_fraction = 0;
  config.degrade_on_failure = false;
  config.remaining_ms = []() { return 0.5; };
  CostService service(prod.get(), nullptr, &w, config);

  auto r = service.StatementCost(0, Configuration());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  // Exactly one attempt ran: the retry loop refused to sleep past the
  // budget instead of burning the configured attempt cap.
  EXPECT_EQ(injector.calls(), 1u);
  EXPECT_EQ(service.whatif_retries(), 0u);
  prod->set_fault_injector(nullptr);
}

// ------------------------------------------------------------ degradation

TEST(CostServiceFaultTest, PermanentFaultDegradesToHeuristicEstimate) {
  auto prod = MakeProduction();
  workload::Workload w = SeedWorkload();

  FaultSpec spec;
  spec.seed = 9;
  spec.permanent_probability = 1;  // every what-if call fails permanently
  FaultInjector injector(spec);
  prod->set_fault_injector(&injector);

  CostService::Config config;
  config.retry.max_attempts = 3;
  CostService service(prod.get(), nullptr, &w, config);

  optimizer::CostModel model(prod->hardware());
  for (size_t i = 0; i < w.size(); ++i) {
    auto got = service.StatementCost(i, Configuration());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // The degraded cost is exactly the catalog-only heuristic estimate.
    EXPECT_EQ(*got, optimizer::HeuristicStatementCost(
                        w.statements()[i].stmt, prod->catalog(), model))
        << "statement " << i;
  }
  prod->set_fault_injector(nullptr);

  EXPECT_EQ(service.degraded_calls(), w.size());
  EXPECT_EQ(service.degraded_statements().size(), w.size());
  // Permanent faults are not retried: one attempt per pricing.
  EXPECT_EQ(service.whatif_retries(), 0u);

  // Degraded entries are cached like any other: a re-ask is a hit, not a
  // second degradation.
  auto again = service.StatementCost(0, Configuration());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.degraded_calls(), w.size());
  EXPECT_GE(service.cache_hits(), 1u);
}

TEST(CostServiceFaultTest, DegradationOffSurfacesTheFailure) {
  auto prod = MakeProduction();
  workload::Workload w = SeedWorkload();

  FaultSpec spec;
  spec.seed = 9;
  spec.permanent_probability = 1;
  FaultInjector injector(spec);
  prod->set_fault_injector(&injector);

  CostService::Config config;
  config.degrade_on_failure = false;
  CostService service(prod.get(), nullptr, &w, config);

  auto r = service.StatementCost(0, Configuration());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(service.degraded_calls(), 0u);
  prod->set_fault_injector(nullptr);
}

// ------------------------------------------------------------ end to end

TEST(FaultTolerantTuningTest, TransientFaultsDoNotChangeTheRecommendation) {
  auto clean = MakeProduction();
  TuningSession clean_session(clean.get(), TuningOptions());
  auto baseline = clean_session.Tune(SeedWorkload());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = MakeProduction();
  TuningOptions opts;
  opts.fault_spec = "seed=42,transient=0.1,latency_ms=0.01";
  // With 12 attempts a pricing fails outright with probability 0.1^12 —
  // deterministically never, under this seed — so every cost recovers.
  opts.retry.max_attempts = 12;
  opts.retry.initial_backoff_ms = 0.01;
  opts.retry.max_backoff_ms = 0.05;
  TuningSession faulty_session(faulty.get(), opts);
  auto result = faulty_session.Tune(SeedWorkload());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Scripted transient faults + latency leave the recommendation and every
  // cost bit-identical to the fault-free run.
  EXPECT_EQ(result->current_cost, baseline->current_cost);
  EXPECT_EQ(result->recommended_cost, baseline->recommended_cost);
  EXPECT_EQ(StructureNames(result->recommendation),
            StructureNames(baseline->recommendation));

  EXPECT_GT(result->injected_transient_faults, 0u);
  EXPECT_EQ(result->whatif_retries, result->injected_transient_faults);
  EXPECT_EQ(result->degraded_calls, 0u);
  EXPECT_EQ(result->report.whatif_retries, result->whatif_retries);
  EXPECT_EQ(baseline->whatif_retries, 0u);
  EXPECT_EQ(baseline->injected_transient_faults, 0u);
}

TEST(FaultTolerantTuningTest, PermanentFaultsDegradeButFinish) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.fault_spec = "seed=13,permanent=1";
  opts.retry.initial_backoff_ms = 0.01;
  TuningSession session(prod.get(), opts);
  auto result = session.Tune(SeedWorkload());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every pricing degraded; degraded costs are configuration-independent,
  // so no structure can show a benefit and tuning honestly recommends
  // nothing rather than guessing.
  EXPECT_GT(result->degraded_calls, 0u);
  EXPECT_GT(result->injected_permanent_faults, 0u);
  EXPECT_EQ(result->report.degraded_calls, result->degraded_calls);
  EXPECT_EQ(result->recommended_cost, result->current_cost);
  for (const auto& s : result->report.statements) {
    EXPECT_TRUE(s.degraded);
  }
  // The report's text rendering surfaces the degradation.
  EXPECT_NE(result->report.ToText().find("degraded"), std::string::npos);
}

// Table-targeted faults ride the same retry path end to end: only pricings
// touching the targeted table can fail, retries recover them all, and the
// recommendation stays bit-identical to the fault-free run.
TEST(FaultTolerantTuningTest, TableTargetedFaultsDoNotChangeTheRecommendation) {
  auto clean = MakeProduction();
  TuningSession clean_session(clean.get(), TuningOptions());
  auto baseline = clean_session.Tune(SeedWorkload());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto faulty = MakeProduction();
  TuningOptions opts;
  opts.fault_spec = "seed=42,transient=0.3,table=items";
  opts.retry.max_attempts = 16;
  opts.retry.initial_backoff_ms = 0.01;
  opts.retry.max_backoff_ms = 0.05;
  TuningSession faulty_session(faulty.get(), opts);
  auto result = faulty_session.Tune(SeedWorkload());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->current_cost, baseline->current_cost);
  EXPECT_EQ(result->recommended_cost, baseline->recommended_cost);
  EXPECT_EQ(StructureNames(result->recommendation),
            StructureNames(baseline->recommendation));
  // The filter matched: items pricings failed and were retried to success.
  EXPECT_GT(result->injected_transient_faults, 0u);
  EXPECT_EQ(result->degraded_calls, 0u);
}

}  // namespace
}  // namespace dta::tuner
