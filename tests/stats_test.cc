#include <gtest/gtest.h>

#include <cmath>

#include "stats/builder.h"
#include "stats/histogram.h"
#include "stats/statistics.h"
#include "storage/datagen.h"

namespace dta::stats {
namespace {

std::vector<sql::Value> IntValues(const std::vector<int64_t>& v) {
  std::vector<sql::Value> out;
  out.reserve(v.size());
  for (int64_t x : v) out.push_back(sql::Value::Int(x));
  return out;
}

TEST(HistogramTest, EmptyInput) {
  Histogram h = Histogram::Build({}, 1.0);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EstimateEquals(sql::Value::Int(1)), 0);
}

TEST(HistogramTest, TotalAndDistinct) {
  Histogram h = Histogram::Build(IntValues({1, 1, 2, 3, 3, 3}), 1.0);
  EXPECT_DOUBLE_EQ(h.total_rows(), 6.0);
  EXPECT_DOUBLE_EQ(h.distinct_count(), 3.0);
  EXPECT_EQ(h.MinValue().AsInt(), 1);
  EXPECT_EQ(h.MaxValue().AsInt(), 3);
}

TEST(HistogramTest, ScaleMultipliesCounts) {
  Histogram h = Histogram::Build(IntValues({1, 2, 3, 4}), 100.0);
  EXPECT_DOUBLE_EQ(h.total_rows(), 400.0);
}

TEST(HistogramTest, EqualityEstimates) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 100; ++i) vals.push_back(i % 10);  // 10 each of 0..9
  Histogram h = Histogram::Build(IntValues(vals), 1.0, 200);
  for (int v = 0; v < 10; ++v) {
    EXPECT_NEAR(h.EstimateEquals(sql::Value::Int(v)), 10.0, 4.0) << v;
  }
  EXPECT_EQ(h.EstimateEquals(sql::Value::Int(99)), 0);
  EXPECT_EQ(h.EstimateEquals(sql::Value::Int(-1)), 0);
}

TEST(HistogramTest, RangeEstimates) {
  std::vector<int64_t> vals;
  for (int i = 1; i <= 1000; ++i) vals.push_back(i);
  Histogram h = Histogram::Build(IntValues(vals), 1.0, 100);
  // Half-open and closed ranges.
  double half = h.EstimateRange(sql::Value::Int(1), true,
                                sql::Value::Int(500), true);
  EXPECT_NEAR(half, 500, 30);
  double unbounded_hi =
      h.EstimateRange(sql::Value::Int(901), true, std::nullopt, false);
  EXPECT_NEAR(unbounded_hi, 100, 30);
  double all = h.EstimateRange(std::nullopt, false, std::nullopt, false);
  EXPECT_DOUBLE_EQ(all, 1000);
  double empty = h.EstimateRange(sql::Value::Int(2000), true,
                                 std::nullopt, false);
  EXPECT_NEAR(empty, 0, 1e-6);
}

TEST(HistogramTest, RangeInterpolatesWithinStep) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(i);
  Histogram h = Histogram::Build(IntValues(vals), 1.0, 10);  // coarse steps
  double q = h.EstimateRange(std::nullopt, false, sql::Value::Int(2500), true);
  EXPECT_NEAR(q, 2500, 600);
}

TEST(HistogramTest, LikePrefix) {
  std::vector<sql::Value> vals;
  for (int i = 0; i < 50; ++i) vals.push_back(sql::Value::String("apple"));
  for (int i = 0; i < 50; ++i) vals.push_back(sql::Value::String("banana"));
  Histogram h = Histogram::Build(std::move(vals), 1.0);
  EXPECT_NEAR(h.EstimateLikePrefix("app"), 50, 10);
  EXPECT_NEAR(h.EstimateLikePrefix("zzz"), 0, 1);
  EXPECT_DOUBLE_EQ(h.EstimateLikePrefix(""), 100);
}

TEST(HistogramTest, ValueAtFraction) {
  std::vector<int64_t> vals;
  for (int i = 1; i <= 1000; ++i) vals.push_back(i);
  Histogram h = Histogram::Build(IntValues(vals), 1.0, 100);
  EXPECT_NEAR(static_cast<double>(
                  h.ValueAtFraction(0.5).AsInt()),
              500, 30);
  EXPECT_EQ(h.ValueAtFraction(1.0).AsInt(), 1000);
  EXPECT_LE(h.ValueAtFraction(0.0).AsInt(), 20);
}

TEST(HistogramTest, MaxStepsRespected) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 100000; ++i) vals.push_back(i);
  Histogram h = Histogram::Build(IntValues(vals), 1.0, 200);
  EXPECT_LE(h.steps().size(), 210u);
  EXPECT_GE(h.steps().size(), 150u);
}

TEST(StatsKeyTest, Canonical) {
  StatsKey k("TPCH", "LineItem", {"L_ShipDate", "L_OrderKey"});
  EXPECT_EQ(k.CanonicalString(), "tpch.lineitem(l_shipdate,l_orderkey)");
  StatsKey k2("tpch", "lineitem", {"l_shipdate", "l_orderkey"});
  EXPECT_TRUE(k == k2);
  StatsKey k3("tpch", "lineitem", {"l_orderkey", "l_shipdate"});
  EXPECT_FALSE(k == k3);  // order is part of identity
}

Statistics MakeStat(const std::string& table,
                    std::vector<std::string> columns,
                    std::vector<double> distinct) {
  Statistics s;
  s.key = StatsKey("db", table, std::move(columns));
  s.prefix_distinct = std::move(distinct);
  s.row_count = 1000;
  s.histogram = Histogram::Build(IntValues({1, 2, 3, 4, 5}), 200.0);
  return s;
}

TEST(StatsManagerTest, PutFindContains) {
  StatsManager m;
  m.Put(MakeStat("t", {"a", "b"}, {10, 100}));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Contains(StatsKey("db", "t", {"a", "b"})));
  EXPECT_FALSE(m.Contains(StatsKey("db", "t", {"b", "a"})));
  EXPECT_NE(m.Find(StatsKey("db", "t", {"a", "b"})), nullptr);
}

TEST(StatsManagerTest, FindHistogramPrefersNarrowest) {
  StatsManager m;
  m.Put(MakeStat("t", {"a", "b", "c"}, {10, 100, 1000}));
  m.Put(MakeStat("t", {"a"}, {10}));
  const Statistics* s = m.FindHistogram("db", "t", "a");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->key.columns.size(), 1u);
  EXPECT_EQ(m.FindHistogram("db", "t", "b"), nullptr);  // b not leading
}

TEST(StatsManagerTest, DensityIsOrderInsensitive) {
  StatsManager m;
  m.Put(MakeStat("t", {"a", "b", "c"}, {10, 100, 1000}));
  auto d_ab = m.DistinctCount("db", "t", {"a", "b"});
  ASSERT_TRUE(d_ab.has_value());
  EXPECT_DOUBLE_EQ(*d_ab, 100);
  auto d_ba = m.DistinctCount("db", "t", {"b", "a"});
  ASSERT_TRUE(d_ba.has_value());
  EXPECT_DOUBLE_EQ(*d_ba, 100);  // Density(A,B) == Density(B,A)
  EXPECT_FALSE(m.DistinctCount("db", "t", {"b"}).has_value());  // not prefix
  EXPECT_FALSE(m.DistinctCount("db", "t", {"a", "c"}).has_value());
  auto d_abc = m.DistinctCount("db", "t", {"c", "a", "b"});
  ASSERT_TRUE(d_abc.has_value());
  EXPECT_DOUBLE_EQ(*d_abc, 1000);
}

TEST(StatsManagerTest, PrefixDensity) {
  Statistics s = MakeStat("t", {"a", "b"}, {10, 100});
  EXPECT_DOUBLE_EQ(s.PrefixDensity(1), 0.1);
  EXPECT_DOUBLE_EQ(s.PrefixDensity(2), 0.01);
  EXPECT_DOUBLE_EQ(s.PrefixDensity(0), 1.0);
}

TEST(BuilderTest, BuildFromDataBasics) {
  catalog::TableSchema schema(
      "t", {{"k", catalog::ColumnType::kInt, 8},
            {"g", catalog::ColumnType::kInt, 8}});
  schema.set_row_count(10000);
  storage::TableGenSpec spec;
  spec.schema = schema;
  spec.column_specs = {storage::ColumnSpec::Sequential(),
                       storage::ColumnSpec::UniformInt(1, 50)};
  spec.rows = 10000;
  Random rng(1);
  auto data = storage::GenerateTable(spec, &rng);
  ASSERT_TRUE(data.ok());

  auto stats = BuildFromData("db", schema, *data, {"k", "g"});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_DOUBLE_EQ(stats->row_count, 10000);
  EXPECT_NEAR(stats->prefix_distinct[0], 10000, 500);   // key column
  EXPECT_NEAR(stats->prefix_distinct[1], 10000, 500);   // (k,g) still unique
  EXPECT_GT(stats->build_duration_ms, 0);

  auto gstats = BuildFromData("db", schema, *data, {"g"});
  ASSERT_TRUE(gstats.ok());
  EXPECT_NEAR(gstats->prefix_distinct[0], 50, 5);
  EXPECT_NEAR(gstats->histogram.EstimateEquals(sql::Value::Int(25)),
              200.0, 80.0);
}

TEST(BuilderTest, BuildErrors) {
  catalog::TableSchema schema("t", {{"k", catalog::ColumnType::kInt, 8}});
  storage::TableData data(schema);
  EXPECT_FALSE(BuildFromData("db", schema, data, {}).ok());
  EXPECT_FALSE(BuildFromData("db", schema, data, {"missing"}).ok());
}

TEST(BuilderTest, SynthesizeFromSpecs) {
  catalog::TableSchema schema(
      "t", {{"k", catalog::ColumnType::kInt, 8},
            {"d", catalog::ColumnType::kString, 10}});
  schema.set_row_count(1000000);
  std::vector<storage::ColumnSpec> specs = {
      storage::ColumnSpec::Sequential(),
      storage::ColumnSpec::Date("1994-01-01", 1000)};
  Random rng(5);
  auto stats = SynthesizeFromSpecs("db", schema, specs, {"d", "k"}, &rng);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_DOUBLE_EQ(stats->row_count, 1000000);
  EXPECT_NEAR(stats->prefix_distinct[0], 1000, 100);     // ~1000 dates
  EXPECT_DOUBLE_EQ(stats->prefix_distinct[1], 1000000);  // capped at rows
  // Histogram covers the date domain.
  EXPECT_GE(stats->histogram.MinValue().AsString(), std::string("1994-01-01"));
}

TEST(BuilderTest, DurationNearlyIndependentOfColumnCount) {
  double one = SimulatedCreateDurationMs(1000000, 100, 1);
  double five = SimulatedCreateDurationMs(1000000, 100, 5);
  EXPECT_GT(five, one);
  // Paper §5.2: the I/O term dominates; extra columns change cost little.
  EXPECT_LT(five / one, 1.5);
}

TEST(BuilderTest, DurationGrowsWithTableSize) {
  EXPECT_GT(SimulatedCreateDurationMs(10000000, 100, 1),
            SimulatedCreateDurationMs(10000, 100, 1));
}

}  // namespace
}  // namespace dta::stats
