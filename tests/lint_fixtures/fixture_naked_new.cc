// Fixtures for the naked-new rule: no naked new/delete; deleted special
// members are exempt.

struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;  // '= delete' is not a deallocation
};

void FireOnNakedNewAndDelete() {
  Widget* w = new Widget();  // expect: naked-new
  delete w;                  // expect: naked-new
  int* arr = new int[8];     // expect: naked-new
  delete[] arr;              // expect: naked-new
}

Widget* SuppressedArenaHandoff() {
  Widget* w = new Widget();  // lint: naked-new (ownership handed to an arena)
  return w;
}

int CleanIdentifiersContainingNew() {
  int max_new = 64;
  int newly = max_new;
  return newly;
}
