// Fixtures for the unguarded-mutex rule: every mutex member needs at least
// one GUARDED_BY(that mutex) user in the same file.

class FireUnguarded {
  std::mutex bad_mu_;  // expect: unguarded-mutex, raw-mutex
  Mutex lonely_mu_;    // expect: unguarded-mutex
  int data_ = 0;
};

class CleanGuarded {
  Mutex mu_;
  int data_ GUARDED_BY(mu_) = 0;
};

class SuppressedPhaseSerialized {
  // Touched only from the session thread between phases.
  Mutex phase_mu_;  // lint: unguarded-mutex
};
