// Clean fixture: nothing in this file fires any dta_lint rule, including
// near-miss identifiers and comment/string mentions of banned constructs.

#include <map>
#include <memory>

struct Entry {
  int value = 0;
};

// Comments may mention std::mutex, rand(), or new Widget() freely.
std::unique_ptr<Entry> MakeEntry() { return std::make_unique<Entry>(); }

int Sum(const std::map<int, int>& m) {
  int total = 0;
  for (const auto& [key, value] : m) total += value;
  const char* text = "calling rand() via std::unordered_map<new>";
  (void)text;
  return total;
}
