// Fixtures for the unordered-output rule. The file name contains "report",
// so dta_lint treats it as an ordered-output file. Never compiled; scanned
// by the DtaLintFixtures ctest via --check-expectations.

#include <unordered_map>  // expect: unordered-output
#include <map>

void FireOnUnorderedContainers() {
  std::unordered_map<int, int> counts;  // expect: unordered-output
  std::unordered_set<int> seen;         // expect: unordered-output
}

void SuppressedSortedElsewhere() {
  std::unordered_map<int, int> counts;  // lint: ordered (exported via a sorted copy)
}

// lint: ordered (suppression from the preceding line also works)
std::unordered_set<int> suppressed_by_previous_line;

void CleanOrderedContainers() {
  std::map<int, int> ordered;
  (void)ordered;
}
