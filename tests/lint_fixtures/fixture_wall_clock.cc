// Fixtures for the wall-clock rule: nondeterministic time and randomness
// sources are banned outside src/common/random.* and sanctioned sites.

#include <chrono>
#include <random>

void FireOnSystemClock() {
  auto now = std::chrono::system_clock::now();  // expect: wall-clock
  (void)now;
}

int FireOnLibcAndDeviceRandomness() {
  srand(42);              // expect: wall-clock
  int a = rand();         // expect: wall-clock
  std::random_device rd;  // expect: wall-clock
  return a + static_cast<int>(rd());
}

void SuppressedTimerSite() {
  // Sanctioned wall-clock read, e.g. stamping a report header.
  auto stamp = std::chrono::system_clock::now();  // lint: wall-clock
  (void)stamp;
}

double CleanSteadyClockAndIdentifiers() {
  auto t0 = std::chrono::steady_clock::now();  // monotonic: allowed
  int randomized = 3;
  (void)t0;
  return randomized;
}
