// Fixtures for the wall-clock rule: nondeterministic time and randomness
// sources are banned outside src/common/random.* and sanctioned sites.

#include <chrono>
#include <random>

void FireOnSystemClock() {
  auto now = std::chrono::system_clock::now();  // expect: wall-clock
  (void)now;
}

int FireOnLibcAndDeviceRandomness() {
  srand(42);              // expect: wall-clock
  int a = rand();         // expect: wall-clock
  std::random_device rd;  // expect: wall-clock
  return a + static_cast<int>(rd());
}

void SuppressedTimerSite() {
  // Sanctioned wall-clock read, e.g. stamping a report header.
  auto stamp = std::chrono::system_clock::now();  // lint: wall-clock
  (void)stamp;
}

double FireOnSteadyClockOutsideClockModule() {
  // Monotonic, but unmockable: durations must come from dta::Clock so a
  // FakeClock can zero them in golden metrics exports.
  auto t0 = std::chrono::steady_clock::now();  // expect: wall-clock
  (void)t0;
  return 0;
}

void SuppressedSteadyClockSite() {
  auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock
  (void)t0;
}

double CleanIdentifiers() {
  int randomized = 3;
  return randomized;
}
