// Lexer regression fixtures: cases the pre-cpplex line-regex linter got
// wrong. Each section documents the old failure mode; the expect-markers
// pin the corrected behavior. Never compiled; scanned by the
// DtaLintFixtures ctest via --check-expectations.

#include <memory>

// Rule keywords inside string literals are prose, not code. The old linter
// matched them and demanded suppressions on lines like these.
const char* kMessage = "do not call rand() or write a naked new here";
const char* kEscaped = "escaped quote \" then srand(1) still in-string";
const char* kFakeMarker = "lint: naked-new";  // markers in strings are inert
int* marker_is_no_shield = new int(1);        // expect: naked-new

// Raw strings may contain quotes and span lines; everything inside is
// literal content. The old linter saw `)" ` as ordinary code and kept
// matching inside the body.
const char* kRaw = R"(raw string with "quotes" and a delete inside)";
const char* kMultiRaw = R"delim(
  std::mutex looks_raw;
  int* p = new int;
  srand(42);
)delim";

/* A block comment spanning lines is invisible to every rule:
   int* leak = new int[8];
   srand(7);
*/

#if 0
int* dead = new int;  // preprocessor-dead: no finding, no marker needed
std::mutex dead_mu;
#else
int live_else_branch = 1;
#endif

#ifdef SOME_UNDEFINED_MACRO
// An unknown condition stays live (conservative: lint more, not less).
int* live_branch = new int;  // expect: naked-new
#endif

// Digit separators: the old lexer treated the ' in 1'000 as a char-literal
// open and swallowed the rest of the line, hiding this delete entirely.
void DigitSeparator(int* raw_ptr) {
  int threshold = 1'000'000; delete raw_ptr;  // expect: naked-new
  (void)threshold;
}

// A real char literal holding a quote must not open a string.
char Quote() { return '"'; }
int* after_quote = new int(2);  // expect: naked-new
