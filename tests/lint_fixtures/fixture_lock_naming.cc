// Fixtures for the lock-naming rule: scoped-guard variables must end in
// "lock" so guards are greppable and never silently temporary.

void FireOnBadGuardNames() {
  MutexLock guard(mu_);              // expect: lock-naming
  std::lock_guard<std::mutex> g(m);  // expect: lock-naming, raw-mutex
}

void SuppressedLegacyName() {
  MutexLock holder(mu_);  // lint: lock-naming
}

void CleanGuardNames() {
  MutexLock lock(mu_);
  MutexLock shard_lock(shard.mu);
}
