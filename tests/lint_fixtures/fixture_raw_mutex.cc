// Fixtures for the raw-mutex rule: unannotated standard synchronization
// types are invisible to -Wthread-safety and banned outside common/mutex.h.

#include <mutex>

class FireRawTypes {
  std::condition_variable cv_;  // expect: raw-mutex
  std::mutex mu2_;              // expect: raw-mutex, unguarded-mutex
};

void FireRawGuards() {
  std::unique_lock<std::mutex> lock(m);  // expect: raw-mutex
  std::scoped_lock all_lock(a, b);       // expect: raw-mutex
}

void SuppressedThirdPartyInterop() {
  // Third-party API hands back a std::unique_lock.
  std::unique_lock<std::mutex> lock(m);  // lint: raw-mutex
}
