#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/token.h"

namespace dta::sql {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto toks = Tokenize("SELECT a, b2 FROM t WHERE x <= 10.5");
  ASSERT_TRUE(toks.ok());
  const auto& v = *toks;
  EXPECT_TRUE(v[0].IsKeyword("SELECT"));
  EXPECT_EQ(v[1].type, TokenType::kIdentifier);
  EXPECT_TRUE(v[2].IsOp(","));
  EXPECT_EQ(v[3].text, "b2");
  EXPECT_TRUE(v[4].IsKeyword("FROM"));
  EXPECT_TRUE(v[6].IsKeyword("WHERE"));
  EXPECT_TRUE(v[8].IsOp("<="));
  EXPECT_EQ(v[9].type, TokenType::kDouble);
  EXPECT_EQ(v.back().type, TokenType::kEnd);
}

TEST(TokenizerTest, KeywordsCaseInsensitive) {
  auto toks = Tokenize("select FrOm");
  ASSERT_TRUE(toks.ok());
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*toks)[1].IsKeyword("FROM"));
}

TEST(TokenizerTest, StringWithEscapedQuote) {
  auto toks = Tokenize("'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kString);
  EXPECT_EQ((*toks)[0].text, "it's");
}

TEST(TokenizerTest, LineComments) {
  auto toks = Tokenize("a -- comment\n b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "a");
  EXPECT_EQ((*toks)[1].text, "b");
}

TEST(TokenizerTest, BracketedIdentifier) {
  auto toks = Tokenize("[Order Details]");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "Order Details");
}

TEST(TokenizerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("[unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseStatement("SELECT a, COUNT(*) FROM T WHERE X < 10 GROUP BY a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(r->is_select());
  const SelectStatement& s = r->select();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->kind, Expr::Kind::kColumn);
  EXPECT_EQ(s.items[1].expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(s.items[1].expr->agg, AggFunc::kCount);
  EXPECT_EQ(s.items[1].expr->left, nullptr);  // COUNT(*)
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "T");
  ASSERT_EQ(s.where.size(), 1u);
  EXPECT_EQ(s.where[0].op, CompareOp::kLt);
  EXPECT_EQ(s.where[0].value.AsInt(), 10);
  ASSERT_EQ(s.group_by.size(), 1u);
  EXPECT_EQ(s.group_by[0].column, "a");
}

TEST(ParserTest, JoinsViaCommaAndWhere) {
  auto r = ParseStatement(
      "SELECT o.o_orderkey FROM orders o, lineitem l "
      "WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStatement& s = r->select();
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].alias, "o");
  ASSERT_EQ(s.where.size(), 2u);
  EXPECT_TRUE(s.where[0].IsJoin());
  EXPECT_EQ(s.where[0].rhs_column.table, "l");
  EXPECT_TRUE(s.where[1].IsRange());
}

TEST(ParserTest, JoinOnSugar) {
  auto r = ParseStatement(
      "SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStatement& s = r->select();
  EXPECT_TRUE(s.select_star);
  ASSERT_EQ(s.from.size(), 2u);
  ASSERT_EQ(s.where.size(), 2u);
  EXPECT_TRUE(s.where[0].IsJoin());
}

TEST(ParserTest, BetweenInLike) {
  auto r = ParseStatement(
      "SELECT a FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE "
      "'1994-12-31' AND k IN (1, 2, 3) AND s LIKE 'pro%'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& w = r->select().where;
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].kind, Predicate::Kind::kBetween);
  EXPECT_EQ(w[0].low.AsString(), "1994-01-01");
  EXPECT_EQ(w[1].kind, Predicate::Kind::kIn);
  EXPECT_EQ(w[1].in_list.size(), 3u);
  EXPECT_EQ(w[2].kind, Predicate::Kind::kLike);
  EXPECT_EQ(w[2].like_pattern, "pro%");
}

TEST(ParserTest, ArithmeticInAggregates) {
  auto r = ParseStatement(
      "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM "
      "lineitem");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& item = r->select().items[0];
  EXPECT_EQ(item.alias, "revenue");
  ASSERT_EQ(item.expr->kind, Expr::Kind::kAggregate);
  EXPECT_EQ(item.expr->agg, AggFunc::kSum);
  ASSERT_EQ(item.expr->left->kind, Expr::Kind::kBinary);
  EXPECT_EQ(item.expr->left->op, BinaryOp::kMul);
}

TEST(ParserTest, TopDistinctOrderBy) {
  auto r = ParseStatement(
      "SELECT DISTINCT TOP 10 a FROM t ORDER BY a DESC, b ASC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const SelectStatement& s = r->select();
  EXPECT_TRUE(s.distinct);
  EXPECT_EQ(s.top, 10);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
}

TEST(ParserTest, NegativeLiterals) {
  auto r = ParseStatement("SELECT a FROM t WHERE x > -5 AND y < -2.5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->select().where[0].value.AsInt(), -5);
  EXPECT_DOUBLE_EQ(r->select().where[1].value.AsDoubleStrict(), -2.5);
}

TEST(ParserTest, Insert) {
  auto r = ParseStatement(
      "INSERT INTO t (a, b, c) VALUES (1, 'x', 2.5), (2, 'y', 3.5)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const InsertStatement& ins = r->insert();
  EXPECT_EQ(ins.table, "t");
  ASSERT_EQ(ins.columns.size(), 3u);
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.rows[1][1].AsString(), "y");
}

TEST(ParserTest, Update) {
  auto r = ParseStatement("UPDATE t SET a = 1, b = 'z' WHERE k = 7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const UpdateStatement& u = r->update();
  EXPECT_EQ(u.table, "t");
  ASSERT_EQ(u.assignments.size(), 2u);
  EXPECT_EQ(u.assignments[1].second.AsString(), "z");
  ASSERT_EQ(u.where.size(), 1u);
}

TEST(ParserTest, Delete) {
  auto r = ParseStatement("DELETE FROM t WHERE d < DATE '1993-01-01'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->del().table, "t");
  ASSERT_EQ(r->del().where.size(), 1u);
}

TEST(ParserTest, Script) {
  auto r = ParseScript("SELECT a FROM t; ; DELETE FROM t WHERE a = 1;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseStatement("UPDATE t SET").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage !").ok());
  EXPECT_FALSE(ParseStatement("SELECT SUM(*) FROM t").ok());
}

TEST(PrinterTest, RoundTripSelect) {
  const char* q =
      "SELECT l_returnflag, SUM(l_quantity) AS sum_qty FROM lineitem WHERE "
      "l_shipdate <= '1998-09-02' GROUP BY l_returnflag ORDER BY "
      "l_returnflag";
  auto r = ParseStatement(q);
  ASSERT_TRUE(r.ok());
  std::string printed = ToSql(*r);
  auto r2 = ParseStatement(printed);
  ASSERT_TRUE(r2.ok()) << printed;
  EXPECT_EQ(printed, ToSql(*r2));
}

TEST(PrinterTest, RoundTripDml) {
  for (const char* q :
       {"INSERT INTO t VALUES (1, 2)", "UPDATE t SET a = 5 WHERE b = 'x'",
        "DELETE FROM t WHERE a BETWEEN 1 AND 10"}) {
    auto r = ParseStatement(q);
    ASSERT_TRUE(r.ok()) << q;
    auto r2 = ParseStatement(ToSql(*r));
    ASSERT_TRUE(r2.ok()) << ToSql(*r);
    EXPECT_EQ(ToSql(*r), ToSql(*r2));
  }
}

TEST(PrinterTest, StringEscaping) {
  auto r = ParseStatement("SELECT a FROM t WHERE s = 'it''s'");
  ASSERT_TRUE(r.ok());
  std::string printed = ToSql(*r);
  EXPECT_NE(printed.find("'it''s'"), std::string::npos);
  auto r2 = ParseStatement(printed);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->select().where[0].value.AsString(), "it's");
}

TEST(CloneTest, StatementCloneIsDeep) {
  auto r = ParseStatement("SELECT a, SUM(b * 2) FROM t WHERE c = 1 GROUP BY a");
  ASSERT_TRUE(r.ok());
  Statement copy = r->Clone();
  EXPECT_EQ(ToSql(*r), ToSql(copy));
}

}  // namespace
}  // namespace dta::sql
