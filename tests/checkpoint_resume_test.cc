// Crash-safety tests: kill the tuning session immediately after every
// checkpoint it writes (via TuningSession::SetCheckpointProbe), resume on a
// fresh server, and require the resumed run to produce the bit-identical
// recommendation, costs, and report of an uninterrupted run — including
// under injected faults. Also covers checkpoint XML round-trip stability and
// the workload/options fingerprint guards.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dta/checkpoint.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as parallel_tuning_test: two joinable tables with
// real data. Every run gets a fresh server, as a restarted process would.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SeedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "INSERT INTO orders (o_id, o_cust, o_date, o_price) VALUES "
      "(31000, 5, '1996-01-01', 10.5);"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

std::string CheckpointPath(const std::string& name) {
  return ::testing::TempDir() + "dta_" + name + ".ckpt.xml";
}

// The recommendation serialized exactly as the output document renders it;
// string equality here is the "bit-identical recommendation" bar.
std::string RecommendationXml(const TuningResult& r) {
  return ConfigurationToXml(r.recommendation)->ToString();
}

void ExpectIdenticalOutcome(const TuningResult& expected,
                            const TuningResult& actual,
                            const std::string& label) {
  EXPECT_EQ(expected.current_cost, actual.current_cost) << label;
  EXPECT_EQ(expected.recommended_cost, actual.recommended_cost) << label;
  EXPECT_EQ(RecommendationXml(expected), RecommendationXml(actual)) << label;
  ASSERT_EQ(expected.report.statements.size(),
            actual.report.statements.size())
      << label;
  for (size_t i = 0; i < expected.report.statements.size(); ++i) {
    EXPECT_EQ(expected.report.statements[i].current_cost,
              actual.report.statements[i].current_cost)
        << label << " statement " << i;
    EXPECT_EQ(expected.report.statements[i].recommended_cost,
              actual.report.statements[i].recommended_cost)
        << label << " statement " << i;
    EXPECT_EQ(expected.report.statements[i].degraded,
              actual.report.statements[i].degraded)
        << label << " statement " << i;
  }
}

Result<TuningResult> RunTune(const TuningOptions& opts,
                             TuningSession::CheckpointProbe probe = nullptr) {
  auto prod = MakeProduction();
  TuningSession session(prod.get(), opts);
  if (probe) session.SetCheckpointProbe(std::move(probe));
  return session.Tune(SeedWorkload());
}

TuningOptions BaseOptions() {
  TuningOptions opts;
  opts.num_threads = 2;
  return opts;
}

// ------------------------------------------------- kill at every checkpoint

TEST(CheckpointResumeTest, KillAtEveryCheckpointResumesBitIdentically) {
  const std::string path = CheckpointPath("kill_everywhere");

  // Uninterrupted reference, no checkpointing involved.
  auto baseline = RunTune(BaseOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Checkpointing alone must not perturb the outcome; count the writes.
  TuningOptions writing = BaseOptions();
  writing.checkpoint_path = path;
  int total_checkpoints = 0;
  auto counting = RunTune(writing, [&total_checkpoints](int ordinal) {
    total_checkpoints = std::max(total_checkpoints, ordinal);
    return Status::Ok();
  });
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();
  ExpectIdenticalOutcome(*baseline, *counting, "checkpointing run");
  // At minimum: current costs, pool, enumeration phase 1, one greedy pick.
  ASSERT_GE(total_checkpoints, 3);

  TuningOptions resuming = writing;
  resuming.resume_path = path;
  for (int kill_at = 1; kill_at <= total_checkpoints; ++kill_at) {
    // Crash immediately after checkpoint `kill_at` lands on disk.
    auto killed = RunTune(writing, [kill_at](int ordinal) {
      return ordinal == kill_at ? Status::Aborted("simulated crash")
                                : Status::Ok();
    });
    ASSERT_FALSE(killed.ok()) << "kill_at " << kill_at;
    EXPECT_EQ(killed.status().code(), StatusCode::kAborted)
        << killed.status().ToString();

    // Restart: fresh server (fresh process), restore, finish.
    auto resumed = RunTune(resuming);
    ASSERT_TRUE(resumed.ok())
        << "kill_at " << kill_at << ": " << resumed.status().ToString();
    EXPECT_TRUE(resumed->resumed) << "kill_at " << kill_at;
    ExpectIdenticalOutcome(
        *baseline, *resumed,
        "resume after kill at checkpoint " + std::to_string(kill_at));
  }
}

TEST(CheckpointResumeTest, ResumeUnderInjectedFaultsKeepsDegradedState) {
  const std::string path = CheckpointPath("faulty");

  TuningOptions opts = BaseOptions();
  opts.fault_spec = "seed=17,permanent=0.3";
  opts.retry.initial_backoff_ms = 0.01;

  // Uninterrupted faulty reference (deterministic: injected faults are a
  // pure hash of seed + call key).
  auto baseline = RunTune(opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->degraded_calls, 0u);

  TuningOptions writing = opts;
  writing.checkpoint_path = path;
  int total_checkpoints = 0;
  auto counting = RunTune(writing, [&total_checkpoints](int ordinal) {
    total_checkpoints = std::max(total_checkpoints, ordinal);
    return Status::Ok();
  });
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();
  ASSERT_GE(total_checkpoints, 2);

  // Kill mid-pipeline; the checkpoint carries degraded cache entries.
  const int kill_at = (total_checkpoints + 1) / 2;
  auto killed = RunTune(writing, [kill_at](int ordinal) {
    return ordinal == kill_at ? Status::Aborted("simulated crash")
                              : Status::Ok();
  });
  ASSERT_FALSE(killed.ok());

  TuningOptions resuming = writing;
  resuming.resume_path = path;
  auto resumed = RunTune(resuming);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  ExpectIdenticalOutcome(*baseline, *resumed, "faulty resume");
}

// ------------------------------------------------- shard topology remap

// A checkpoint written by a 4-shard run resumes on a 2-shard topology.
// Cache entries are keyed by (statement, fingerprint) — never by shard —
// so resume remaps deterministically: the outcome is bit-identical to an
// uninterrupted, unsharded baseline.
TEST(CheckpointResumeTest, FourShardCheckpointResumesOnTwoShards) {
  const std::string path = CheckpointPath("shard_remap");

  auto baseline = RunTune(BaseOptions());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  TuningOptions writing = BaseOptions();
  writing.shards = 4;
  writing.checkpoint_path = path;
  int total_checkpoints = 0;
  auto counting = RunTune(writing, [&total_checkpoints](int ordinal) {
    total_checkpoints = std::max(total_checkpoints, ordinal);
    return Status::Ok();
  });
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();
  ASSERT_GE(total_checkpoints, 2);

  // Crash the 4-shard run mid-pipeline.
  const int kill_at = (total_checkpoints + 1) / 2;
  auto killed = RunTune(writing, [kill_at](int ordinal) {
    return ordinal == kill_at ? Status::Aborted("simulated crash")
                              : Status::Ok();
  });
  ASSERT_FALSE(killed.ok());

  // The file records the writer's topology; a corrupted topology is
  // refused with a clear status instead of resuming into undefined
  // behavior. (Inspect before resuming — the resumed run checkpoints too,
  // overwriting the file with its own topology.)
  {
    auto prod = MakeProduction();
    auto loaded = LoadCheckpoint(path, prod->catalog());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->shards, 4);
    std::string xml_text = CheckpointToXml(*loaded);
    const std::string good = "Shards=\"4\"";
    const std::string bad = "Shards=\"0\"";
    const size_t at = xml_text.find(good);
    ASSERT_NE(at, std::string::npos);
    xml_text.replace(at, good.size(), bad);
    auto corrupt = CheckpointFromXml(xml_text, prod->catalog());
    ASSERT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument)
        << corrupt.status().ToString();
  }

  // Restart on a smaller fleet (shards is excluded from the options
  // fingerprint precisely so topology can change across restarts).
  TuningOptions resuming = writing;
  resuming.shards = 2;
  resuming.resume_path = path;
  auto resumed = RunTune(resuming);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->shards_used, 2);
  ExpectIdenticalOutcome(*baseline, *resumed, "4-shard -> 2-shard resume");
}

// ------------------------------------------------------------- guard rails

TEST(CheckpointResumeTest, ResumeRejectsMismatchedWorkloadOrOptions) {
  const std::string path = CheckpointPath("mismatch");

  TuningOptions writing = BaseOptions();
  writing.checkpoint_path = path;
  auto killed = RunTune(writing, [](int ordinal) {
    return ordinal == 1 ? Status::Aborted("simulated crash") : Status::Ok();
  });
  ASSERT_FALSE(killed.ok());

  // Different search options: the checkpointed state would be meaningless.
  TuningOptions other_options = writing;
  other_options.resume_path = path;
  other_options.enumeration_k = writing.enumeration_k + 1;
  auto bad_options = RunTune(other_options);
  ASSERT_FALSE(bad_options.ok());
  EXPECT_EQ(bad_options.status().code(), StatusCode::kFailedPrecondition)
      << bad_options.status().ToString();

  // Different workload under matching options.
  TuningOptions resuming = writing;
  resuming.resume_path = path;
  auto prod = MakeProduction();
  TuningSession session(prod.get(), resuming);
  auto other = workload::Workload::FromScript(
      "SELECT i_qty FROM items WHERE i_part = 3");
  ASSERT_TRUE(other.ok());
  auto bad_workload = session.Tune(*other);
  ASSERT_FALSE(bad_workload.ok());
  EXPECT_EQ(bad_workload.status().code(), StatusCode::kFailedPrecondition)
      << bad_workload.status().ToString();

  // The matching pair still resumes fine.
  auto good = RunTune(resuming);
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(CheckpointResumeTest, MissingResumeFileFails) {
  TuningOptions opts = BaseOptions();
  opts.resume_path = CheckpointPath("never_written");
  auto r = RunTune(opts);
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------------- round trip

TEST(CheckpointResumeTest, CheckpointXmlRoundTripsExactly) {
  const std::string path = CheckpointPath("roundtrip");

  // Capture a late checkpoint so every section (cache, pool, enumeration
  // state) is populated.
  TuningOptions writing = BaseOptions();
  writing.checkpoint_path = path;
  auto run = RunTune(writing);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  auto prod = MakeProduction();
  auto loaded = LoadCheckpoint(path, prod->catalog());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->phase, kCheckpointEnumeration);
  EXPECT_FALSE(loaded->cache.empty());
  EXPECT_FALSE(loaded->pool.empty());
  EXPECT_TRUE(loaded->enumeration.phase1_done);

  // Serialize -> parse -> serialize is a fixed point: doubles are hex
  // floats, so nothing drifts.
  const std::string xml_text = CheckpointToXml(*loaded);
  auto reparsed = CheckpointFromXml(xml_text, prod->catalog());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(CheckpointToXml(*reparsed), xml_text);
  EXPECT_EQ(reparsed->workload_fingerprint, loaded->workload_fingerprint);
  EXPECT_EQ(reparsed->options_fingerprint, loaded->options_fingerprint);
  EXPECT_EQ(reparsed->current_costs, loaded->current_costs);
  EXPECT_EQ(reparsed->pool.size(), loaded->pool.size());
}

}  // namespace
}  // namespace dta::tuner
