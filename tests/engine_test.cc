#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "catalog/physical_design.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "stats/builder.h"
#include "storage/datagen.h"

namespace dta::engine {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::PartitionScheme;
using catalog::TableSchema;
using catalog::ViewDef;

class MapDataSource : public DataSource {
 public:
  void Add(const std::string& db, storage::TableData data) {
    std::string key = db + "." + data.table_name();
    tables_[key] = std::make_unique<storage::TableData>(std::move(data));
  }
  const storage::TableData* Table(const std::string& database,
                                  const std::string& table) const override {
    auto it = tables_.find(database + "." + table);
    return it != tables_.end() ? it->second.get() : nullptr;
  }

 private:
  std::map<std::string, std::unique_ptr<storage::TableData>> tables_;
};

// Environment with small hand-checkable tables plus larger generated ones.
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    env_ = std::make_unique<Env>();

    // Small deterministic table.
    TableSchema emp("emp", {{"id", ColumnType::kInt, 8},
                            {"dept", ColumnType::kString, 8},
                            {"salary", ColumnType::kDouble, 8}});
    emp.set_row_count(6);
    storage::TableData emp_data(emp);
    auto add = [&](int64_t id, const char* dept, double salary) {
      ASSERT_TRUE(emp_data
                      .AppendRow({sql::Value::Int(id),
                                  sql::Value::String(dept),
                                  sql::Value::Double(salary)})
                      .ok());
    };
    add(1, "eng", 100);
    add(2, "eng", 200);
    add(3, "sales", 50);
    add(4, "sales", 70);
    add(5, "hr", 90);
    add(6, "eng", 150);

    // Generated pair of joinable tables.
    Random rng(7);
    TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                  {"o_cust", ColumnType::kInt, 8},
                                  {"o_date", ColumnType::kString, 10}});
    orders.set_row_count(2000);
    orders.SetPrimaryKey({"o_id"});
    storage::TableGenSpec ospec;
    ospec.schema = orders;
    ospec.column_specs = {storage::ColumnSpec::Sequential(),
                          storage::ColumnSpec::UniformInt(1, 100),
                          storage::ColumnSpec::Date("1994-01-01", 700)};
    ospec.rows = 2000;
    auto odata = storage::GenerateTable(ospec, &rng);
    ASSERT_TRUE(odata.ok());

    TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                                {"i_part", ColumnType::kInt, 8},
                                {"i_qty", ColumnType::kDouble, 8}});
    items.set_row_count(8000);
    storage::TableGenSpec ispec;
    ispec.schema = items;
    ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 2000),
                          storage::ColumnSpec::UniformInt(1, 300),
                          storage::ColumnSpec::UniformReal(1, 100)};
    ispec.rows = 8000;
    auto idata = storage::GenerateTable(ispec, &rng);
    ASSERT_TRUE(idata.ok());

    catalog::Database db("db");
    ASSERT_TRUE(db.AddTable(emp).ok());
    ASSERT_TRUE(db.AddTable(orders).ok());
    ASSERT_TRUE(db.AddTable(items).ok());
    ASSERT_TRUE(env_->catalog.AddDatabase(std::move(db)).ok());

    auto add_stats = [&](const TableSchema& schema,
                         const storage::TableData& data,
                         std::vector<std::string> cols) {
      auto s = stats::BuildFromData("db", schema, data, cols);
      ASSERT_TRUE(s.ok());
      env_->stats.Put(std::move(s).value());
    };
    add_stats(orders, *odata, {"o_id"});
    add_stats(orders, *odata, {"o_cust"});
    add_stats(orders, *odata, {"o_date"});
    add_stats(items, *idata, {"i_oid"});
    add_stats(items, *idata, {"i_part"});

    env_->data.Add("db", std::move(emp_data));
    env_->data.Add("db", std::move(odata).value());
    env_->data.Add("db", std::move(idata).value());

    env_->provider = std::make_unique<optimizer::StatsProvider>(&env_->stats);
    env_->opt = std::make_unique<optimizer::Optimizer>(
        env_->catalog, *env_->provider, optimizer::HardwareParams());
  }

  static void TearDownTestSuite() {
    env_.reset();
  }

  struct Env {
    catalog::Catalog catalog;
    stats::StatsManager stats;
    MapDataSource data;
    std::unique_ptr<optimizer::StatsProvider> provider;
    std::unique_ptr<optimizer::Optimizer> opt;
  };
  static std::unique_ptr<Env> env_;

  static QueryResult Run(const std::string& text,
                         const Configuration& config) {
    auto stmt = sql::ParseStatement(text);
    EXPECT_TRUE(stmt.ok()) << text;
    Executor exec(env_->catalog, &env_->data);
    auto r = exec.ExecuteSelect(stmt->select(), config, *env_->opt);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  // Canonical sorted text rendering for result comparison.
  static std::vector<std::string> Canon(const QueryResult& r,
                                        bool sort = true) {
    std::vector<std::string> rows;
    for (const auto& row : r.rows) {
      std::string s;
      for (const auto& v : row) {
        // Round doubles so SUM order differences don't flake.
        if (v.type() == sql::ValueType::kDouble) {
          s += StrFormat("%.4f|", v.AsDoubleStrict());
        } else {
          s += v.ToSqlLiteral() + "|";
        }
      }
      rows.push_back(std::move(s));
    }
    if (sort) std::sort(rows.begin(), rows.end());
    return rows;
  }
};

std::unique_ptr<EngineTest::Env> EngineTest::env_;

TEST_F(EngineTest, ScanWithFilter) {
  auto r = Run("SELECT id FROM emp WHERE salary > 90", Configuration());
  auto rows = Canon(r);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], "1|");
  EXPECT_EQ(rows[1], "2|");
  EXPECT_EQ(rows[2], "6|");
}

TEST_F(EngineTest, GroupByAggregates) {
  auto r = Run(
      "SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary), "
      "AVG(salary) FROM emp GROUP BY dept ORDER BY dept",
      Configuration());
  ASSERT_EQ(r.rows.size(), 3u);
  // eng: 3 rows, sum=450, min=100, max=200, avg=150
  EXPECT_EQ(r.rows[0][0].AsString(), "eng");
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][2].ToDouble(), 450);
  EXPECT_DOUBLE_EQ(r.rows[0][3].ToDouble(), 100);
  EXPECT_DOUBLE_EQ(r.rows[0][4].ToDouble(), 200);
  EXPECT_DOUBLE_EQ(r.rows[0][5].ToDouble(), 150);
  EXPECT_EQ(r.rows[1][0].AsString(), "hr");
  EXPECT_EQ(r.rows[2][0].AsString(), "sales");
}

TEST_F(EngineTest, ScalarAggregateOnEmptyInput) {
  auto r = Run("SELECT COUNT(*) FROM emp WHERE salary > 10000",
               Configuration());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(EngineTest, OrderByDescAndTop) {
  auto r = Run("SELECT TOP 2 id FROM emp ORDER BY salary DESC",
               Configuration());
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);   // salary 200
  EXPECT_EQ(r.rows[1][0].AsInt(), 6);   // salary 150
}

TEST_F(EngineTest, Distinct) {
  auto r = Run("SELECT DISTINCT dept FROM emp", Configuration());
  EXPECT_EQ(Canon(r).size(), 3u);
}

TEST_F(EngineTest, InAndLikePredicates) {
  auto r = Run("SELECT id FROM emp WHERE dept IN ('hr', 'sales')",
               Configuration());
  EXPECT_EQ(Canon(r).size(), 3u);
  auto r2 = Run("SELECT id FROM emp WHERE dept LIKE 's%'", Configuration());
  EXPECT_EQ(Canon(r2).size(), 2u);
  auto r3 = Run("SELECT id FROM emp WHERE dept LIKE '_r'", Configuration());
  auto rows3 = Canon(r3);
  ASSERT_EQ(rows3.size(), 1u);
  EXPECT_EQ(rows3[0], "5|");
}

TEST_F(EngineTest, ArithmeticExpressions) {
  auto r = Run("SELECT SUM(salary * (1 + 0.1)) FROM emp WHERE dept = 'eng'",
               Configuration());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_NEAR(r.rows[0][0].ToDouble(), 450 * 1.1, 1e-6);
}

TEST_F(EngineTest, JoinMatchesHandComputation) {
  auto r = Run(
      "SELECT e.id, i.i_qty FROM emp e, items i WHERE e.id = i.i_oid AND "
      "e.dept = 'hr'",
      Configuration());
  // Every matching item row has i_oid == 5.
  for (const auto& row : r.rows) {
    EXPECT_EQ(row[0].AsInt(), 5);
  }
}

// ---- Configuration invariance: every physical design must return exactly
// the same logical results.

Configuration IndexedConfig() {
  Configuration c;
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "orders",
                                  .key_columns = {"o_id"}})
                  .ok());
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "orders",
                                  .key_columns = {"o_cust"},
                                  .included_columns = {"o_date"}})
                  .ok());
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "items",
                                  .key_columns = {"i_oid"},
                                  .included_columns = {"i_qty"}})
                  .ok());
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "items",
                                  .key_columns = {"i_part", "i_qty"}})
                  .ok());
  return c;
}

Configuration ClusteredConfig() {
  Configuration c;
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "orders",
                                  .key_columns = {"o_cust"},
                                  .clustered = true})
                  .ok());
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "items",
                                  .key_columns = {"i_oid"},
                                  .clustered = true})
                  .ok());
  return c;
}

Configuration PartitionedConfig() {
  Configuration c;
  PartitionScheme scheme;
  scheme.column = "o_date";
  scheme.boundaries = {sql::Value::String("1994-07-01"),
                       sql::Value::String("1995-01-01"),
                       sql::Value::String("1995-07-01")};
  c.SetTablePartitioning("orders", scheme);
  EXPECT_TRUE(c.AddIndex(IndexDef{.table = "orders",
                                  .key_columns = {"o_date"},
                                  .partitioning = scheme})
                  .ok());
  return c;
}

Configuration ViewConfig() {
  Configuration c;
  auto def = sql::ParseStatement(
      "SELECT o_cust, COUNT(*) AS cnt, SUM(i_qty) AS qty FROM orders, items "
      "WHERE o_id = i_oid GROUP BY o_cust");
  EXPECT_TRUE(def.ok());
  ViewDef v;
  v.definition =
      std::make_shared<sql::SelectStatement>(def->select().Clone());
  v.referenced_tables = {"orders", "items"};
  v.estimated_rows = 100;
  v.estimated_row_bytes = 24;
  EXPECT_TRUE(c.AddView(v).ok());
  return c;
}

class InvarianceTest
    : public EngineTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(InvarianceTest, AllConfigurationsAgree) {
  const char* query = GetParam();
  auto baseline = Canon(Run(query, Configuration()));
  EXPECT_FALSE(baseline.empty()) << "degenerate test: no rows";
  const Configuration configs[] = {IndexedConfig(), ClusteredConfig(),
                                   PartitionedConfig(), ViewConfig()};
  for (const auto& config : configs) {
    auto got = Canon(Run(query, config));
    EXPECT_EQ(got, baseline)
        << query << "\nfingerprint: " << config.Fingerprint();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, InvarianceTest,
    ::testing::Values(
        "SELECT o_id, o_date FROM orders WHERE o_id = 42",
        "SELECT o_id FROM orders WHERE o_id BETWEEN 100 AND 120",
        "SELECT o_date FROM orders WHERE o_cust = 7",
        "SELECT o_id FROM orders WHERE o_date < '1994-03-01'",
        "SELECT o_id FROM orders WHERE o_date BETWEEN '1994-06-01' AND "
        "'1994-09-01' ORDER BY o_id",
        "SELECT o_cust, COUNT(*) FROM orders GROUP BY o_cust",
        "SELECT i_part, SUM(i_qty), COUNT(*) FROM items GROUP BY i_part",
        "SELECT o_cust, COUNT(*), SUM(i_qty) FROM orders, items WHERE "
        "o_id = i_oid GROUP BY o_cust",
        "SELECT o_cust, AVG(i_qty) FROM orders, items WHERE o_id = i_oid "
        "GROUP BY o_cust",
        "SELECT i_qty FROM orders, items WHERE o_id = i_oid AND o_cust = 31",
        "SELECT TOP 5 o_id FROM orders WHERE o_cust = 11 ORDER BY o_id",
        "SELECT o_id FROM orders WHERE o_cust IN (3, 5, 8)",
        "SELECT COUNT(*) FROM orders, items WHERE o_id = i_oid AND "
        "o_date >= '1995-01-01' AND i_qty < 50"));

TEST_F(EngineTest, IndexSeekReturnsSortedOrder) {
  Configuration c;
  ASSERT_TRUE(c.AddIndex(IndexDef{.table = "orders",
                                  .key_columns = {"o_cust", "o_id"}})
                  .ok());
  // Seek on o_cust returns rows ordered by (o_cust, o_id): verify ORDER BY
  // is satisfiable without an explicit sort and results are right.
  auto r = Run("SELECT o_id FROM orders WHERE o_cust = 9 ORDER BY o_id", c);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LE(r.rows[i - 1][0].AsInt(), r.rows[i][0].AsInt());
  }
}

TEST_F(EngineTest, ViewMaterializationIsCached) {
  Configuration c = ViewConfig();
  auto stmt = sql::ParseStatement(
      "SELECT o_cust, COUNT(*), SUM(i_qty) FROM orders, items WHERE o_id = "
      "i_oid GROUP BY o_cust");
  ASSERT_TRUE(stmt.ok());
  Executor exec(env_->catalog, &env_->data);
  auto r1 = exec.ExecuteSelect(stmt->select(), c, *env_->opt);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = exec.ExecuteSelect(stmt->select(), c, *env_->opt);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(Canon(*r1), Canon(*r2));
  exec.ClearStructureCache();
  auto r3 = exec.ExecuteSelect(stmt->select(), c, *env_->opt);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(Canon(*r1), Canon(*r3));
}

TEST_F(EngineTest, MetadataOnlyTableFailsExecution) {
  // A catalog with no backing data: optimization works, execution refuses.
  auto stmt = sql::ParseStatement("SELECT id FROM emp");
  ASSERT_TRUE(stmt.ok());
  Executor exec(env_->catalog, nullptr);
  auto r = exec.ExecuteSelect(stmt->select(), Configuration(), *env_->opt);
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, ColumnNamesFollowAliases) {
  auto r = Run("SELECT dept AS d, COUNT(*) AS n FROM emp GROUP BY dept",
               Configuration());
  ASSERT_EQ(r.column_names.size(), 2u);
  EXPECT_EQ(r.column_names[0], "d");
  EXPECT_EQ(r.column_names[1], "n");
}


TEST_F(EngineTest, SameTableColumnComparison) {
  // emp: salary > id * nothing... use items: i_qty vs i_part as doubles?
  // Simplest: same-table compare on orders via o_id <> o_cust.
  auto r = Run("SELECT COUNT(*) FROM orders WHERE o_id = o_cust",
               Configuration());
  ASSERT_EQ(r.rows.size(), 1u);
  // Verify against a manual count through a different query shape.
  auto all = Run("SELECT o_id, o_cust FROM orders WHERE o_id < 101",
                 Configuration());
  int64_t expect = 0;
  for (const auto& row : all.rows) {
    if (row[0].AsInt() == row[1].AsInt()) ++expect;
  }
  // o_cust ranges to 100, so all matches have o_id <= 100: the manual count
  // over o_id < 101 is complete.
  EXPECT_EQ(r.rows[0][0].AsInt(), expect);
}

TEST_F(EngineTest, CrossTableNonEqualityComparison) {
  // Post-join filter: i_qty (per item) < o_cust (order attribute).
  auto joined = Run(
      "SELECT o_cust, i_qty FROM orders, items WHERE o_id = i_oid",
      Configuration());
  int64_t expect = 0;
  for (const auto& row : joined.rows) {
    if (row[1].ToDouble() < static_cast<double>(row[0].AsInt())) ++expect;
  }
  auto filtered = Run(
      "SELECT COUNT(*) FROM orders, items WHERE o_id = i_oid AND i_qty < "
      "o_cust",
      Configuration());
  ASSERT_EQ(filtered.rows.size(), 1u);
  EXPECT_EQ(filtered.rows[0][0].AsInt(), expect);
}

}  // namespace
}  // namespace dta::engine
