// dta_analyze lock-cycle fixture, inverted half: acquires CallChain's two
// mutexes in the opposite order from fixture_cycle_forward.cc, closing the
// left_/right_ cycle across files. The finding anchors at the inner
// acquisition — the line that completes the inversion.

void CallChain::Inverted() {
  MutexLock right_lock(right_);
  MutexLock left_lock(left_);  // expect: lock-cycle
  ++forward_steps_;
}
