// dta_analyze --audit fixtures: annotation-coverage fire, suppress, clean,
// and exemption cases. Scanned by DtaAnalyzeAuditFixtures with --audit
// --no-manifest --check-expectations. Never compiled.

class AuditGaps {
 public:
  void LockWithoutExcludes();
  void LockWithExcludes() EXCLUDES(good_mu_);
  void SuppressedGap();

 private:
  Mutex naked_mu_;  // expect: audit-guarded
  Mutex good_mu_;
  int value_ GUARDED_BY(good_mu_) = 0;
};

// Acquires a member mutex without declaring the contract: callers cannot
// see that they must not already hold naked_mu_.
void AuditGaps::LockWithoutExcludes() {
  MutexLock lock(naked_mu_);  // expect: audit-excludes
  ++value_;
}

void AuditGaps::LockWithExcludes() {
  MutexLock lock(good_mu_);
  ++value_;
}

void AuditGaps::SuppressedGap() {
  MutexLock lock(good_mu_);  // lint: audit-excludes (fixture: acknowledged)
  --value_;
}

// Constructors and destructors are exempt: nothing else can run
// concurrently with them, so an EXCLUDES contract is meaningless.
class CtorIsExempt {
 public:
  CtorIsExempt() {
    MutexLock lock(mu_);
    count_ = 1;
  }

 private:
  Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

struct IndexedCell {
  Mutex mu;
  int hits GUARDED_BY(mu) = 0;
};

// A parameter-rooted acquisition is annotatable — EXCLUDES(cell.mu) — so
// its absence is a finding...
void ParamRootedWithoutExcludes(IndexedCell& cell) {
  MutexLock cell_lock(cell.mu);  // expect: audit-excludes
  ++cell.hits;
}

// ...and its presence is clean.
void ParamRootedWithExcludes(IndexedCell& cell) EXCLUDES(cell.mu) {
  MutexLock cell_lock(cell.mu);
  ++cell.hits;
}

// Container-indexed paths cannot be named in a Clang annotation; exempt.
void ContainerIndexedIsExempt(std::vector<IndexedCell*>& cells) {
  MutexLock cell_lock(cells[0]->mu);
  ++cells[0]->hits;
}

// Locals are invisible outside the function; exempt.
void LocalIsExempt() {
  Mutex local_mu;
  MutexLock local_lock(local_mu);
}
