// dta_analyze fixture: condvar-under-mutex gone wrong. CreditPump models
// the completion queue's shape — a waiter parks on a condvar while holding
// the queue mutex (correct on its own: Wait atomically releases and
// reacquires it) — but the two halves disagree on lock order around the
// wait. The waiter reaches into the credit ledger while still holding
// queue_mu_ (chain edge queue_mu_ -> credit_mu_, anchored at the call),
// and the notifier publishes under queue_mu_ taken inside credit_mu_
// (direct edge credit_mu_ -> queue_mu_, anchored at the inner
// acquisition). Either half alone is fine; together they can deadlock with
// the waiter wedged inside GrantCredit and the notifier wedged on
// queue_mu_, the notification never sent. Both edges are blessed in
// fixtures.manifest so only the lock-cycle rule fires here.
// fixture_condvar_clean.cc shows the same machinery used correctly.
// Never compiled; scanned by the DtaAnalyze fixture ctests.

class CreditPump {
 public:
  void Pump();
  void GrantCredit();
  void Refund();

 private:
  Mutex queue_mu_;
  Mutex credit_mu_;
  CondVar cv_;
  int queued_ GUARDED_BY(queue_mu_) = 0;
  int credits_ GUARDED_BY(credit_mu_) = 0;
};

// Waiter half: the condvar wait itself is the blessed pattern, but the
// credit grant happens with queue_mu_ still held.
void CreditPump::Pump() {
  MutexLock queue_lock(queue_mu_);
  while (queued_ == 0) cv_.Wait(queue_mu_);
  --queued_;
  GrantCredit();  // expect: lock-cycle
}

void CreditPump::GrantCredit() {
  MutexLock credit_lock(credit_mu_);
  ++credits_;
}

// Notifier half: inverted order — holds the credit ledger and takes the
// queue mutex inside it to publish and wake the waiter.
void CreditPump::Refund() {
  MutexLock credit_lock(credit_mu_);
  ++credits_;
  MutexLock queue_lock(queue_mu_);  // expect: lock-cycle
  ++queued_;
  cv_.NotifyAll();
}
