// dta_analyze unordered-flow fixtures: fire, suppress, and clean cases for
// iteration over std::unordered_map/set feeding emission or order-sensitive
// accumulation. Never compiled; scanned with --check-expectations.

#include <map>
#include <unordered_map>
#include <unordered_set>

// Hash order straight into an output stream: the canonical leak.
void EmissionInLoop(std::ostream& out) {
  std::unordered_map<std::string, int> counts;
  for (const auto& [key, value] : counts) {  // expect: unordered-flow
    out << key << "=" << value << "\n";
  }
}

// Accumulation into a vector with no later sort is just a slower version
// of the same leak.
void AccumulationWithoutSort(std::vector<std::string>* names) {
  std::unordered_set<std::string> seen;
  for (const auto& name : seen) {  // expect: unordered-flow
    names->push_back(name);
  }
}

// The blessed pattern: accumulate, then sort before the order can matter.
void AccumulationSortedAfter(std::vector<std::string>* names) {
  std::unordered_set<std::string> seen;
  for (const auto& name : seen) {
    names->push_back(name);
  }
  std::sort(names->begin(), names->end());
}

// Suppression at the loop for a reviewed exception.
void SuppressedEmission(std::ostream& out) {
  std::unordered_map<int, int> single;
  // lint: unordered-flow (at most one element by construction)
  for (const auto& [k, v] : single) {
    out << k << v;
  }
}

// Ordered containers iterate deterministically — no finding.
void OrderedMapIsClean(std::ostream& out) {
  std::map<int, int> by_key;
  for (const auto& [k, v] : by_key) {
    out << k << v;
  }
}

// Iterating something else while only inserting into the unordered set is
// fine: insertion is order-insensitive, and the loop's range is a vector.
void InsertOnlyDedupIsClean(const std::vector<uint64_t>& xs,
                            std::ostream& out) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t x : xs) {
    if (seen.insert(x).second) out << x;
  }
}
