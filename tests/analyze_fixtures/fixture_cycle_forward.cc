// dta_analyze lock-cycle fixture, forward half. This file establishes the
// CallChain class and the left_ -> right_ edge — deliberately through a
// call (Outer holds left_ and calls Inner, which acquires right_), proving
// the inter-procedural path. fixture_cycle_inverted.cc closes the cycle
// from another file with the direct right_ -> left_ nesting. Never
// compiled; scanned by the DtaAnalyze fixture ctests.
//
// Both edges are blessed in fixtures.manifest so only the lock-cycle rule
// fires here; drift.manifest deliberately disagrees with the computed
// edges for the DtaAnalyzeManifestDrift test.

class CallChain {
 public:
  void Outer();
  void Inner();
  void Inverted();

 private:
  Mutex left_;
  Mutex right_;
  int forward_steps_ GUARDED_BY(left_) = 0;
  int backward_steps_ GUARDED_BY(right_) = 0;
};

void CallChain::Inner() {
  MutexLock right_lock(right_);
  ++backward_steps_;
}

void CallChain::Outer() {
  MutexLock left_lock(left_);
  ++forward_steps_;
  Inner();  // expect: lock-cycle
}
