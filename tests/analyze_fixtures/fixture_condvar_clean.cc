// dta_analyze fixture: condvar-under-mutex done right — the clean twin of
// fixture_condvar_cycle.cc, mirroring how the completion queue actually
// uses its condvar. One mutex owns the whole handshake: the waiter holds
// mu_ across the wait loop, the notifier flips state and notifies under
// the same mu_, and anything expensive happens on a snapshot taken inside
// a brace scope that ends the lock before the work starts. No second
// mutex is ever held around the wait or the notify, so this file
// contributes no lock-order edges and must produce zero findings — it
// pins that the analyzer does not false-positive on cv_.Wait(mu_) under a
// MutexLock scope. Never compiled; scanned by the DtaAnalyze fixture
// ctests.

class DrainGate {
 public:
  void Await();
  void Publish();
  void Drain();

 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ GUARDED_BY(mu_) = false;
  int pending_ GUARDED_BY(mu_) = 0;
};

// Waiter: holds mu_ across the wait — Wait atomically releases and
// reacquires it, so no other lock may sit outside this scope.
void DrainGate::Await() {
  MutexLock lock(mu_);
  while (!ready_) cv_.Wait(mu_);
  --pending_;
}

// Notifier: state change and notify under the same (and only) mutex.
void DrainGate::Publish() {
  MutexLock lock(mu_);
  ready_ = true;
  ++pending_;
  cv_.NotifyAll();
}

// Snapshot-then-act: the brace scope returns mu_ before the drained batch
// is acted on, so the "work" below runs lock-free.
void DrainGate::Drain() {
  int batch = 0;
  {
    MutexLock lock(mu_);
    batch = pending_;
    pending_ = 0;
  }
  while (batch > 0) --batch;
}
