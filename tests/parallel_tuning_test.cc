// Concurrency tests for parallel what-if costing: Tune() determinism at any
// thread count, thread-safe CostService under many-thread hammering (run
// under TSan in CI), and GreedySearch parallel/serial equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "dta/cost_service.h"
#include "dta/greedy.h"
#include "dta/tuning_session.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Builds a production server with two joinable tables and real data (the
// seed workload fixture of dta_session_test).
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SeedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "INSERT INTO orders (o_id, o_cust, o_date, o_price) VALUES "
      "(31000, 5, '1996-01-01', 10.5);"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

// Canonical names of every structure in a configuration, sorted.
std::vector<std::string> StructureNames(const Configuration& c) {
  std::vector<std::string> out;
  for (const auto& ix : c.indexes()) out.push_back(ix.CanonicalName());
  for (const auto& v : c.views()) out.push_back(v.CanonicalName());
  for (const auto& [table, scheme] : c.table_partitioning()) {
    out.push_back("tp:" + table + ":" + scheme.CanonicalString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<TuningResult> TuneWithThreads(const TuningOptions& base_options,
                                     int threads) {
  auto prod = MakeProduction();
  TuningOptions opts = base_options;
  opts.num_threads = threads;
  TuningSession session(prod.get(), opts);
  return session.Tune(SeedWorkload());
}

// ------------------------------------------------------------ determinism

TEST(ParallelTuningTest, FourThreadsMatchSerialRecommendation) {
  auto serial = TuneWithThreads(TuningOptions(), 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = TuneWithThreads(TuningOptions(), 4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(serial->threads_used, 1);
  EXPECT_EQ(parallel->threads_used, 4);
  // Bit-identical costs: every cached cost comes from the same
  // deterministic what-if computation and reductions run in statement
  // order regardless of thread count.
  EXPECT_EQ(serial->current_cost, parallel->current_cost);
  EXPECT_EQ(serial->recommended_cost, parallel->recommended_cost);
  EXPECT_EQ(StructureNames(serial->recommendation),
            StructureNames(parallel->recommendation));
  EXPECT_EQ(serial->enumeration_evaluations,
            parallel->enumeration_evaluations);
  EXPECT_EQ(serial->candidates_generated, parallel->candidates_generated);
  ASSERT_EQ(serial->report.statements.size(),
            parallel->report.statements.size());
  for (size_t i = 0; i < serial->report.statements.size(); ++i) {
    EXPECT_EQ(serial->report.statements[i].current_cost,
              parallel->report.statements[i].current_cost);
    EXPECT_EQ(serial->report.statements[i].recommended_cost,
              parallel->report.statements[i].recommended_cost);
  }
}

TEST(ParallelTuningTest, DeterministicAcrossPresetsAndThreadCounts) {
  std::vector<TuningOptions> presets = {TuningOptions::IndexesOnly(),
                                        TuningOptions::IndexesAndViews()};
  TuningOptions aligned;
  aligned.require_alignment = true;
  presets.push_back(aligned);
  for (size_t p = 0; p < presets.size(); ++p) {
    auto serial = TuneWithThreads(presets[p], 1);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (int threads : {2, 4}) {
      auto parallel = TuneWithThreads(presets[p], threads);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(serial->current_cost, parallel->current_cost)
          << "preset " << p << " threads " << threads;
      EXPECT_EQ(serial->recommended_cost, parallel->recommended_cost)
          << "preset " << p << " threads " << threads;
      EXPECT_EQ(StructureNames(serial->recommendation),
                StructureNames(parallel->recommendation))
          << "preset " << p << " threads " << threads;
    }
  }
}

// ------------------------------------------------------------ stress

// Hammers one CostService from many threads over a grid of statements and
// configurations; verifies every returned cost against a serial reference
// service, that the hit/miss counters are consistent (no lost updates), and
// that no missing-statistics record is dropped.
TEST(CostServiceStressTest, ConcurrentStatementCostIsConsistent) {
  auto prod = MakeProduction();
  workload::Workload w = SeedWorkload();

  // A small family of configurations differing in relevant structures.
  std::vector<Configuration> configs;
  configs.push_back(Configuration());
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "orders", .key_columns = {"o_id"}})
            .ok());
    configs.push_back(c);
  }
  {
    Configuration c;
    ASSERT_TRUE(c.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_date"},
                                    .included_columns = {"o_cust"}})
                    .ok());
    configs.push_back(c);
  }
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "items", .key_columns = {"i_part"}})
            .ok());
    configs.push_back(c);
  }
  {
    Configuration c;
    ASSERT_TRUE(
        c.AddIndex(IndexDef{.table = "orders", .key_columns = {"o_cust"}})
            .ok());
    ASSERT_TRUE(c.AddIndex(IndexDef{.table = "items",
                                    .key_columns = {"i_oid"},
                                    .included_columns = {"i_qty"}})
                    .ok());
    configs.push_back(c);
  }

  // Serial reference: costs and the missing-statistics set.
  CostService reference(prod.get(), nullptr, &w);
  std::vector<std::vector<double>> expected(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    for (const Configuration& c : configs) {
      auto r = reference.StatementCost(i, c);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected[i].push_back(*r);
    }
  }
  const std::set<stats::StatsKey> expected_missing =
      reference.missing_stats();
  ASSERT_FALSE(expected_missing.empty());

  CostService service(prod.get(), nullptr, &w);
  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t n = 0; n < w.size() * configs.size(); ++n) {
          // Each thread walks the grid with a different stride/offset so
          // cold misses, racing misses and hits all occur.
          size_t pos = (n * (t + 1) + round) % (w.size() * configs.size());
          size_t i = pos % w.size();
          size_t j = pos / w.size();
          auto r = service.StatementCost(i, configs[j]);
          if (!r.ok() || *r != expected[i][j]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  const size_t total_requests =
      static_cast<size_t>(kThreads) * kRounds * w.size() * configs.size();
  // Every request is accounted exactly once, as a hit or a what-if call.
  EXPECT_EQ(service.cache_hits() + service.whatif_calls(), total_requests);
  // Racing cold misses are deduplicated in-flight: a (statement,
  // fingerprint) pair is priced exactly once, so the hammered service's
  // call count equals the serial reference's exactly.
  EXPECT_EQ(service.whatif_calls(), reference.whatif_calls());
  // No missing-statistics record may be lost.
  EXPECT_EQ(service.missing_stats(), expected_missing);
}

// Same hammering through ParallelFor and WorkloadCost in the test-server
// scenario, exercising the simulated-hardware optimizer path.
TEST(CostServiceStressTest, ParallelWorkloadCostMatchesSerial) {
  auto prod = MakeProduction();
  auto test = server::Server::FromMetadataScript(
      prod->ScriptMetadata(), "test", optimizer::HardwareParams());
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  workload::Workload w = SeedWorkload();

  Configuration config;
  ASSERT_TRUE(
      config
          .AddIndex(IndexDef{.table = "orders", .key_columns = {"o_date"}})
          .ok());

  CostService serial((*test).get(), &prod->hardware(), &w);
  auto serial_current = serial.WorkloadCost(Configuration());
  auto serial_config = serial.WorkloadCost(config);
  ASSERT_TRUE(serial_current.ok());
  ASSERT_TRUE(serial_config.ok());

  ThreadPool pool(7);
  CostService parallel((*test).get(), &prod->hardware(), &w);
  for (int round = 0; round < 3; ++round) {
    auto c1 = parallel.WorkloadCost(Configuration(), &pool);
    auto c2 = parallel.WorkloadCost(config, &pool);
    ASSERT_TRUE(c1.ok()) << c1.status().ToString();
    ASSERT_TRUE(c2.ok()) << c2.status().ToString();
    EXPECT_EQ(*c1, *serial_current);
    EXPECT_EQ(*c2, *serial_config);
  }
  EXPECT_EQ(parallel.missing_stats(), serial.missing_stats());
}

// ------------------------------------------------------------ time limit

// A time budget too small for even the current-cost pass must stop the
// parallel phases mid-flight (workers check the deadline between tasks),
// not run them to completion: tuning still returns a well-formed result
// with the limit flagged.
TEST(ParallelTuningTest, TinyTimeBudgetStopsMidPhase) {
  auto unlimited = TuneWithThreads(TuningOptions(), 4);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();
  EXPECT_FALSE(unlimited->hit_time_limit);

  TuningOptions opts;
  opts.time_limit_ms = 0.01;
  auto limited = TuneWithThreads(opts, 4);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_TRUE(limited->hit_time_limit);
  // The search phases were cancelled, so the run retires far fewer what-if
  // calls than the unlimited one.
  EXPECT_LT(limited->whatif_calls, unlimited->whatif_calls);
  EXPECT_EQ(limited->enumeration_evaluations, 0u);
}

// ------------------------------------------------------------ greedy

TEST(ParallelGreedyTest, PoolSearchMatchesSerialSearch) {
  constexpr size_t kCandidates = 24;
  // Deterministic, thread-safe objective with interactions and an
  // infeasible region.
  auto eval = [](const std::vector<size_t>& subset) -> Result<double> {
    double cost = 1000;
    for (size_t i : subset) {
      if (i % 7 == 3 && subset.size() > 2) {
        return Status::OutOfRange("infeasible");
      }
      cost -= 150.0 / (1.0 + static_cast<double>(i));
    }
    // Diminishing returns for larger subsets.
    cost += 10.0 * static_cast<double>(subset.size() * subset.size());
    return cost;
  };

  for (int m : {1, 2}) {
    GreedyResult serial =
        GreedySearch(kCandidates, m, 6, 1000, eval, nullptr, 1e-4);
    ThreadPool pool(4);
    GreedyResult parallel = GreedySearch(kCandidates, m, 6, 1000, eval,
                                         nullptr, 1e-4, &pool);
    EXPECT_EQ(serial.chosen, parallel.chosen) << "m=" << m;
    EXPECT_EQ(serial.cost, parallel.cost) << "m=" << m;
    EXPECT_EQ(serial.evaluations, parallel.evaluations) << "m=" << m;
  }
}

}  // namespace
}  // namespace dta::tuner
