// End-to-end determinism tests for the socket costing transport: tuning
// sessions whose every what-if call crosses a Unix socket to a CostWorker
// must produce recommendations byte-identical to the in-process backend —
// at any (threads x shards) combination, and under chaos (a worker severing
// its connection mid-stream, a worker answering with transient faults).
//
// The workers here are in-process CostWorker instances serving clones of
// the production server, so the test exercises the full wire path (DTR1
// frames, completion queue, requeues, reconnect probes) without fork/exec;
// the separate-process path is covered by the cost_server CLI smoke test
// and the socket-transport CI job.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "dta/rpc/worker.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "workload/workload.h"

namespace dta::tuner {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::TableSchema;

// Same production fixture as shard_failover_test.
std::unique_ptr<server::Server> MakeProduction(uint64_t seed = 11) {
  auto s = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  Random rng(seed);

  TableSchema orders("orders", {{"o_id", ColumnType::kInt, 8},
                                {"o_cust", ColumnType::kInt, 8},
                                {"o_date", ColumnType::kString, 10},
                                {"o_price", ColumnType::kDouble, 8}});
  orders.set_row_count(30000);
  orders.SetPrimaryKey({"o_id"});
  TableSchema items("items", {{"i_oid", ColumnType::kInt, 8},
                              {"i_part", ColumnType::kInt, 8},
                              {"i_qty", ColumnType::kDouble, 8}});
  items.set_row_count(120000);

  catalog::Database db("shop");
  EXPECT_TRUE(db.AddTable(orders).ok());
  EXPECT_TRUE(db.AddTable(items).ok());
  EXPECT_TRUE(s->AttachDatabase(std::move(db)).ok());

  storage::TableGenSpec ospec;
  ospec.schema = orders;
  ospec.column_specs = {storage::ColumnSpec::Sequential(),
                        storage::ColumnSpec::UniformInt(1, 3000),
                        storage::ColumnSpec::Date("1994-01-01", 1500),
                        storage::ColumnSpec::UniformReal(10, 10000)};
  ospec.rows = 30000;
  auto odata = storage::GenerateTable(ospec, &rng);
  EXPECT_TRUE(odata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(odata).value()).ok());

  storage::TableGenSpec ispec;
  ispec.schema = items;
  ispec.column_specs = {storage::ColumnSpec::UniformInt(1, 30000),
                        storage::ColumnSpec::UniformInt(1, 2000),
                        storage::ColumnSpec::UniformReal(1, 100)};
  ispec.rows = 120000;
  auto idata = storage::GenerateTable(ispec, &rng);
  EXPECT_TRUE(idata.ok());
  EXPECT_TRUE(s->AttachTableData("shop", std::move(idata).value()).ok());

  Configuration raw;
  EXPECT_TRUE(raw.AddIndex(IndexDef{.table = "orders",
                                    .key_columns = {"o_id"},
                                    .constraint_enforcing = true})
                  .ok());
  EXPECT_TRUE(s->ImplementConfiguration(raw).ok());
  return s;
}

workload::Workload SeedWorkload() {
  const char* script =
      "SELECT o_price FROM orders WHERE o_id = 55;"
      "SELECT o_price FROM orders WHERE o_id = 120;"
      "SELECT o_cust, COUNT(*) FROM orders WHERE o_date < '1995-01-01' "
      "GROUP BY o_cust;"
      "SELECT o_cust, SUM(i_qty) FROM orders, items WHERE o_id = i_oid "
      "GROUP BY o_cust;"
      "SELECT i_qty FROM items WHERE i_part = 77;"
      "INSERT INTO orders (o_id, o_cust, o_date, o_price) VALUES "
      "(31000, 5, '1996-01-01', 10.5);"
      "UPDATE items SET i_qty = 3 WHERE i_part = 9";
  auto w = workload::Workload::FromScript(script);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  return std::move(w).value();
}

std::string RecommendationXml(const TuningResult& r) {
  return ConfigurationToXml(r.recommendation)->ToString();
}

// No lost and no double-counted calls, same conservation law the inproc
// sharded backend obeys.
void ExpectCallsConserved(const TuningResult& r, const std::string& label) {
  EXPECT_EQ(r.shard_successes, r.whatif_calls - r.degraded_calls) << label;
  size_t attempts = 0;
  for (size_t c : r.shard_calls) attempts += c;
  EXPECT_EQ(attempts,
            r.shard_successes + r.shard_failovers + r.shard_exhausted)
      << label;
}

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  return StrFormat("/tmp/dta_stt_%d_%d.sock",
                   static_cast<int>(::getpid()), counter.fetch_add(1));
}

// One tuning run over the socket transport. Chaos knobs: `sever_victim`
// severs its connection after `sever_after_calls` what-if responses;
// `fault_victim` prices through a FaultInjector parsed from `fault_spec`.
struct SocketRun {
  int shards = 1;
  int threads = 1;
  int sever_victim = -1;
  size_t sever_after_calls = 0;
  int fault_victim = -1;
  std::string fault_spec;
  MetricsRegistry* metrics = nullptr;
};

Result<TuningResult> TuneSocket(const SocketRun& run) {
  auto prod = MakeProduction();

  // Declaration order matters: workers shut down (joining their serve
  // threads) before the clone servers they price on are destroyed.
  std::vector<std::unique_ptr<server::Server>> clones;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<std::unique_ptr<rpc::CostWorker>> workers;
  std::vector<std::string> endpoints;
  for (int i = 0; i < run.shards; ++i) {
    auto clone = prod->Clone(StrFormat("worker%d", i));
    if (!clone.ok()) return clone.status();
    if (i == run.fault_victim) {
      auto spec = FaultSpec::Parse(run.fault_spec);
      if (!spec.ok()) return spec.status();
      injectors.push_back(std::make_unique<FaultInjector>(*spec));
      (*clone)->set_fault_injector(injectors.back().get());
    }
    rpc::CostWorkerOptions wopts;
    wopts.threads = 2;
    if (i == run.sever_victim) {
      wopts.sever_after_calls = run.sever_after_calls;
    }
    workers.push_back(std::make_unique<rpc::CostWorker>(
        clone->get(), wopts));
    clones.push_back(std::move(clone).value());
    endpoints.push_back(UniqueSocketPath());
    auto s = workers.back()->Listen(endpoints.back());
    if (!s.ok()) return s;
  }

  TuningOptions opts;
  opts.shards = run.shards;
  opts.num_threads = run.threads;
  opts.transport = TuningOptions::Transport::kSocket;
  opts.socket_endpoints = endpoints;
  TuningSession session(prod.get(), opts);
  if (run.metrics != nullptr) {
    session.SetObservability({run.metrics, nullptr, nullptr});
  }
  auto r = session.Tune(SeedWorkload());
  for (const std::string& path : endpoints) ::unlink(path.c_str());
  return r;
}

Result<TuningResult> TuneInproc(int shards, int threads) {
  auto prod = MakeProduction();
  TuningOptions opts;
  opts.shards = shards;
  opts.num_threads = threads;
  TuningSession session(prod.get(), opts);
  return session.Tune(SeedWorkload());
}

// ----------------------------------------------------- transport parity

// The acceptance gate: recommendations byte-identical between transports
// at two different (threads x shards) shapes.
TEST(SocketTransportTest, ByteIdenticalToInprocAcrossTopologies) {
  auto baseline = TuneInproc(1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected_xml = RecommendationXml(*baseline);

  struct Shape {
    int shards;
    int threads;
  };
  for (const Shape& shape : {Shape{1, 1}, Shape{3, 4}}) {
    const std::string label =
        StrFormat("%d shards x %d threads", shape.shards, shape.threads);
    auto socket = TuneSocket({.shards = shape.shards,
                              .threads = shape.threads});
    ASSERT_TRUE(socket.ok()) << label << ": "
                             << socket.status().ToString();
    EXPECT_EQ(expected_xml, RecommendationXml(*socket)) << label;
    EXPECT_EQ(baseline->current_cost, socket->current_cost) << label;
    EXPECT_EQ(baseline->recommended_cost, socket->recommended_cost)
        << label;
    EXPECT_EQ(baseline->whatif_calls, socket->whatif_calls) << label;
    EXPECT_EQ(socket->degraded_calls, 0u) << label;
    EXPECT_EQ(socket->shards_used, shape.shards) << label;
    ExpectCallsConserved(*socket, label);
  }
}

// The transport exports its rpc.* counters: every pricing crossed the wire.
TEST(SocketTransportTest, RpcMetricsCountTheWire) {
  MetricsRegistry metrics;
  auto socket = TuneSocket({.shards = 2, .threads = 2,
                            .metrics = &metrics});
  ASSERT_TRUE(socket.ok()) << socket.status().ToString();
  const auto counters = metrics.CounterValues();
  ASSERT_TRUE(counters.count("rpc.calls"));
  EXPECT_GE(counters.at("rpc.calls"), socket->shard_successes);
  ASSERT_TRUE(counters.count("rpc.connects"));
  EXPECT_GE(counters.at("rpc.connects"), 2u);
}

// ------------------------------------------------------------------ chaos

// A worker severs its connection mid-stream (its in-flight calls die
// unanswered). The completion queue requeues them on the surviving
// workers; the severed worker is rediscovered by a probe after the worker
// loops back to accept. Result: byte-identical, nothing degraded.
TEST(SocketTransportTest, WorkerSeverMidStreamKeepsRecommendationIdentical) {
  auto baseline = TuneInproc(1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto chaos = TuneSocket({.shards = 3,
                           .threads = 4,
                           .sever_victim = 1,
                           .sever_after_calls = 5});
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*chaos));
  EXPECT_EQ(baseline->recommended_cost, chaos->recommended_cost);
  EXPECT_EQ(baseline->whatif_calls, chaos->whatif_calls);
  EXPECT_EQ(chaos->degraded_calls, 0u);
  ExpectCallsConserved(*chaos, "severed worker");
}

// A worker whose server answers with random transient faults: the error
// travels back as a clean WhatIfResponse status, the queue requeues the
// statement on another shard, and the result is unchanged.
TEST(SocketTransportTest, FlakyWorkerKeepsRecommendationIdentical) {
  auto baseline = TuneInproc(1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto chaos = TuneSocket({.shards = 3,
                           .threads = 4,
                           .fault_victim = 2,
                           .fault_spec = "seed=13,transient=0.5"});
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*chaos));
  EXPECT_EQ(baseline->whatif_calls, chaos->whatif_calls);
  EXPECT_EQ(chaos->degraded_calls, 0u);
  EXPECT_GT(chaos->shard_failovers, 0u);
  ExpectCallsConserved(*chaos, "flaky worker");
}

// Sever and transient faults at once, on different workers.
TEST(SocketTransportTest, CombinedChaosKeepsRecommendationIdentical) {
  auto baseline = TuneInproc(1, 1);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  auto chaos = TuneSocket({.shards = 3,
                           .threads = 4,
                           .sever_victim = 0,
                           .sever_after_calls = 8,
                           .fault_victim = 2,
                           .fault_spec = "seed=9,transient=0.2"});
  ASSERT_TRUE(chaos.ok()) << chaos.status().ToString();
  EXPECT_EQ(RecommendationXml(*baseline), RecommendationXml(*chaos));
  EXPECT_EQ(baseline->whatif_calls, chaos->whatif_calls);
  EXPECT_EQ(chaos->degraded_calls, 0u);
  ExpectCallsConserved(*chaos, "combined chaos");
}

// ------------------------------------------------------------- validation

TEST(SocketTransportTest, SessionRejectsIncompatibleOptions) {
  auto prod = MakeProduction();
  const workload::Workload w = SeedWorkload();

  {
    // Endpoint count must match the shard count.
    TuningOptions opts;
    opts.shards = 2;
    opts.transport = TuningOptions::Transport::kSocket;
    opts.socket_endpoints = {"/tmp/only_one.sock"};
    TuningSession session(prod.get(), opts);
    auto r = session.Tune(w);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
  }
  {
    // In-process fault injection cannot reach out-of-process pricing; the
    // session refuses rather than silently tuning without chaos.
    TuningOptions opts;
    opts.transport = TuningOptions::Transport::kSocket;
    opts.socket_endpoints = {"/tmp/one.sock"};
    opts.fault_spec = "seed=3,transient=0.1";
    TuningSession session(prod.get(), opts);
    auto r = session.Tune(w);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
  }
  {
    TuningOptions opts;
    opts.transport = TuningOptions::Transport::kSocket;
    opts.socket_endpoints = {"/tmp/one.sock"};
    opts.shard_fault_spec = "0:down_after=5";
    TuningSession session(prod.get(), opts);
    auto r = session.Tune(w);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
  }
}

}  // namespace
}  // namespace dta::tuner
