#include <gtest/gtest.h>

#include <memory>

#include "catalog/physical_design.h"
#include "common/strings.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "stats/builder.h"
#include "storage/datagen.h"

namespace dta::optimizer {
namespace {

using catalog::ColumnType;
using catalog::Configuration;
using catalog::IndexDef;
using catalog::PartitionScheme;
using catalog::TableSchema;
using catalog::ViewDef;

// Test fixture: a small two-table schema with real generated data and real
// statistics, so estimates are grounded.
class OptimizerTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kOrdersRows = 20000;
  static constexpr uint64_t kLineitemRows = 80000;

  static void SetUpTestSuite() {
    env_ = std::make_unique<Env>();
    Random rng(42);

    TableSchema orders("orders", {{"o_orderkey", ColumnType::kInt, 8},
                                  {"o_custkey", ColumnType::kInt, 8},
                                  {"o_orderdate", ColumnType::kString, 10},
                                  {"o_totalprice", ColumnType::kDouble, 8}});
    orders.set_row_count(kOrdersRows);
    orders.SetPrimaryKey({"o_orderkey"});
    storage::TableGenSpec ospec;
    ospec.schema = orders;
    ospec.column_specs = {storage::ColumnSpec::Sequential(),
                          storage::ColumnSpec::UniformInt(1, 2000),
                          storage::ColumnSpec::Date("1992-01-01", 2400),
                          storage::ColumnSpec::UniformReal(100, 500000)};
    ospec.rows = kOrdersRows;
    auto odata = storage::GenerateTable(ospec, &rng);
    ASSERT_TRUE(odata.ok());

    TableSchema lineitem("lineitem",
                         {{"l_orderkey", ColumnType::kInt, 8},
                          {"l_partkey", ColumnType::kInt, 8},
                          {"l_shipdate", ColumnType::kString, 10},
                          {"l_quantity", ColumnType::kDouble, 8},
                          {"l_extendedprice", ColumnType::kDouble, 8}});
    lineitem.set_row_count(kLineitemRows);
    storage::TableGenSpec lspec;
    lspec.schema = lineitem;
    lspec.column_specs = {
        storage::ColumnSpec::UniformInt(1, kOrdersRows),
        storage::ColumnSpec::UniformInt(1, 5000),
        storage::ColumnSpec::Date("1992-01-01", 2400),
        storage::ColumnSpec::UniformReal(1, 50),
        storage::ColumnSpec::UniformReal(100, 100000)};
    lspec.rows = kLineitemRows;
    auto ldata = storage::GenerateTable(lspec, &rng);
    ASSERT_TRUE(ldata.ok());

    catalog::Database db("db");
    ASSERT_TRUE(db.AddTable(orders).ok());
    ASSERT_TRUE(db.AddTable(lineitem).ok());
    ASSERT_TRUE(env_->catalog.AddDatabase(std::move(db)).ok());

    // Statistics on every column we predicate on.
    auto add_stats = [&](const TableSchema& schema,
                         const storage::TableData& data,
                         std::vector<std::string> cols) {
      auto s = stats::BuildFromData("db", schema, data, cols);
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      env_->stats.Put(std::move(s).value());
    };
    add_stats(orders, *odata, {"o_orderkey"});
    add_stats(orders, *odata, {"o_custkey"});
    add_stats(orders, *odata, {"o_orderdate"});
    add_stats(lineitem, *ldata, {"l_orderkey"});
    add_stats(lineitem, *ldata, {"l_partkey"});
    add_stats(lineitem, *ldata, {"l_shipdate", "l_partkey"});
    add_stats(lineitem, *ldata, {"l_quantity"});
  }

  static void TearDownTestSuite() {
    env_.reset();
  }

  struct Env {
    catalog::Catalog catalog;
    stats::StatsManager stats;
  };
  static std::unique_ptr<Env> env_;

  Optimizer MakeOptimizer(const HardwareParams& hw = HardwareParams()) {
    provider_ = std::make_unique<StatsProvider>(&env_->stats);
    return Optimizer(env_->catalog, *provider_, hw);
  }

  static sql::Statement Parse(const std::string& text) {
    auto r = sql::ParseStatement(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return std::move(r).value();
  }

  double Cost(const Optimizer& opt, const std::string& text,
              const Configuration& config) {
    sql::Statement stmt = Parse(text);
    auto c = opt.CostStatement(stmt, config);
    EXPECT_TRUE(c.ok()) << text << " -> " << c.status().ToString();
    return c.ok() ? *c : -1;
  }

  std::unique_ptr<StatsProvider> provider_;
};

std::unique_ptr<OptimizerTest::Env> OptimizerTest::env_;

TEST_F(OptimizerTest, BindResolvesTablesAndColumns) {
  Optimizer opt = MakeOptimizer();
  sql::Statement stmt = Parse(
      "SELECT o.o_orderkey, l_quantity FROM orders o, lineitem l WHERE "
      "o.o_orderkey = l.l_orderkey AND l_shipdate < '1995-01-01'");
  auto plan = opt.OptimizeSelect(stmt.select(), Configuration());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->bound.tables.size(), 2u);
  EXPECT_EQ(plan->bound.join_atoms.size(), 1u);
  EXPECT_EQ(plan->bound.filters_by_table[1].size(), 1u);
}

TEST_F(OptimizerTest, BindErrors) {
  Optimizer opt = MakeOptimizer();
  for (const char* q : {
           "SELECT x FROM nosuchtable",
           "SELECT nosuchcol FROM orders",
           "SELECT o_orderkey FROM orders, lineitem WHERE bogus = 1",
       }) {
    sql::Statement stmt = Parse(q);
    EXPECT_FALSE(opt.OptimizeSelect(stmt.select(), Configuration()).ok())
        << q;
  }
}

TEST_F(OptimizerTest, RawConfigurationUsesTableScan) {
  Optimizer opt = MakeOptimizer();
  sql::Statement stmt =
      Parse("SELECT o_totalprice FROM orders WHERE o_orderkey = 17");
  auto plan = opt.OptimizeSelect(stmt.select(), Configuration());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kTableScan);
}

TEST_F(OptimizerTest, SelectiveEqualityPrefersIndexSeek) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderkey"}})
                  .ok());
  sql::Statement stmt =
      Parse("SELECT o_totalprice FROM orders WHERE o_orderkey = 17");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kIndexSeek);
  EXPECT_TRUE(plan->root->needs_lookup);
  EXPECT_NEAR(plan->root->est_rows, 1.0, 2.0);

  double with_index = plan->cost;
  double without = Cost(opt, "SELECT o_totalprice FROM orders WHERE "
                             "o_orderkey = 17",
                        Configuration());
  EXPECT_LT(with_index, without * 0.2);
}

TEST_F(OptimizerTest, UnselectivePredicateKeepsScan) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_shipdate"}})
                  .ok());
  // ~100% of rows match: lookups would dwarf a scan.
  sql::Statement stmt = Parse(
      "SELECT l_quantity FROM lineitem WHERE l_shipdate >= '1990-01-01'");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kTableScan);
}

TEST_F(OptimizerTest, CoveringIndexBeatsNonCovering) {
  Optimizer opt = MakeOptimizer();
  Configuration narrow;
  ASSERT_TRUE(narrow
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_shipdate"}})
                  .ok());
  Configuration covering;
  ASSERT_TRUE(covering
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_shipdate"},
                                     .included_columns = {"l_quantity"}})
                  .ok());
  const char* q =
      "SELECT l_quantity FROM lineitem WHERE l_shipdate BETWEEN "
      "'1994-01-01' AND '1994-03-01'";
  double c_narrow = Cost(opt, q, narrow);
  double c_cover = Cost(opt, q, covering);
  EXPECT_LT(c_cover, c_narrow);
}

TEST_F(OptimizerTest, CoveringIndexScanForUnselectiveQuery) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_partkey"},
                                     .included_columns = {"l_quantity"}})
                  .ok());
  // No predicate on l_partkey: a narrow covering scan still beats the
  // full-width table scan.
  sql::Statement stmt =
      Parse("SELECT l_partkey, l_quantity FROM lineitem WHERE "
            "l_quantity < 100");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kIndexScan);
}

TEST_F(OptimizerTest, ClusteredIndexEnablesStreamAggregate) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_custkey"},
                                     .clustered = true})
                  .ok());
  sql::Statement stmt = Parse(
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kStreamAggregate);

  auto hash_plan =
      opt.OptimizeSelect(stmt.select(), Configuration());
  ASSERT_TRUE(hash_plan.ok());
  EXPECT_EQ(hash_plan->root->op, PlanOp::kHashAggregate);
}

TEST_F(OptimizerTest, PartitionEliminationReducesScanCost) {
  Optimizer opt = MakeOptimizer();
  Configuration partitioned;
  PartitionScheme scheme;
  scheme.column = "l_shipdate";
  for (int y = 1993; y <= 1998; ++y) {
    scheme.boundaries.push_back(
        sql::Value::String(StrFormat("%d-01-01", y)));
  }
  partitioned.SetTablePartitioning("lineitem", scheme);
  const char* q =
      "SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate BETWEEN "
      "'1994-02-01' AND '1994-11-30'";
  double part_cost = Cost(opt, q, partitioned);
  double raw_cost = Cost(opt, q, Configuration());
  EXPECT_LT(part_cost, raw_cost * 0.6);

  sql::Statement stmt = Parse(q);
  auto plan = opt.OptimizeSelect(stmt.select(), partitioned);
  ASSERT_TRUE(plan.ok());
  // One partition touched (1994 falls inside [1994-01-01, 1995-01-01)).
  const PlanNode* scan = plan->root.get();
  while (!scan->children.empty()) scan = scan->children[0].get();
  EXPECT_EQ(scan->partitions_touched, 1);
}

TEST_F(OptimizerTest, IntegratedExample2Shape) {
  // Paper §3 Example 2: clustered index on the grouping column plus range
  // partitioning on the selection column beats clustering on the selection
  // column alone.
  Optimizer opt = MakeOptimizer();
  const char* q =
      "SELECT o_custkey, COUNT(*) FROM orders WHERE o_orderdate BETWEEN "
      "'1995-06-01' AND '1996-05-31' GROUP BY o_custkey";

  Configuration staged;  // clustered on selection column only
  ASSERT_TRUE(staged
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderdate"},
                                     .clustered = true})
                  .ok());

  Configuration integrated;  // clustered on group col + partition on date
  PartitionScheme scheme;
  scheme.column = "o_orderdate";
  for (int y = 1992; y <= 1998; ++y) {
    scheme.boundaries.push_back(
        sql::Value::String(StrFormat("%d-06-01", y)));
  }
  integrated.SetTablePartitioning("orders", scheme);
  ASSERT_TRUE(integrated
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_custkey"},
                                     .clustered = true,
                                     .partitioning = scheme})
                  .ok());
  double c_staged = Cost(opt, q, staged);
  double c_integrated = Cost(opt, q, integrated);
  EXPECT_LT(c_integrated, c_staged * 1.05);
}

TEST_F(OptimizerTest, JoinPicksIndexNestedLoopWhenOuterIsSelective) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderkey"}})
                  .ok());
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_orderkey"}})
                  .ok());
  sql::Statement stmt = Parse(
      "SELECT l_quantity FROM orders o, lineitem l WHERE o.o_orderkey = "
      "l.l_orderkey AND o.o_orderkey = 123");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kNestLoopJoin);
}

TEST_F(OptimizerTest, JoinUsesHashJoinForLargeInputs) {
  Optimizer opt = MakeOptimizer();
  sql::Statement stmt = Parse(
      "SELECT o_custkey, SUM(l_quantity) FROM orders o, lineitem l WHERE "
      "o.o_orderkey = l.l_orderkey GROUP BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), Configuration());
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->root->op, PlanOp::kHashAggregate);
  EXPECT_EQ(plan->root->children[0]->op, PlanOp::kHashJoin);
  // Join cardinality ~ lineitem rows (FK join).
  EXPECT_NEAR(plan->root->children[0]->est_rows, kLineitemRows,
              kLineitemRows * 0.5);
}

TEST_F(OptimizerTest, OrderByAddsSortUnlessIndexProvidesOrder) {
  Optimizer opt = MakeOptimizer();
  sql::Statement stmt =
      Parse("SELECT o_custkey FROM orders ORDER BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), Configuration());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->op, PlanOp::kSort);

  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_custkey"},
                                     .clustered = true})
                  .ok());
  auto plan2 = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan2.ok());
  EXPECT_NE(plan2->root->op, PlanOp::kSort);
}

TEST_F(OptimizerTest, HardwareParametersChangeCosts) {
  Optimizer fast = MakeOptimizer(HardwareParams::ProductionClass());
  auto p1 = std::move(provider_);  // keep alive for optimizer lifetime
  Optimizer slow = MakeOptimizer(HardwareParams::TestClass());
  const char* q =
      "SELECT o_custkey, COUNT(*) FROM orders o, lineitem l WHERE "
      "o.o_orderkey = l.l_orderkey GROUP BY o_custkey";
  double c_fast = Cost(fast, q, Configuration());
  double c_slow = Cost(slow, q, Configuration());
  EXPECT_LT(c_fast, c_slow);
}

// ---------------------------------------------------------------- views

std::shared_ptr<const sql::SelectStatement> ViewDefOf(const char* text) {
  auto r = sql::ParseStatement(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::make_shared<sql::SelectStatement>(r->select().Clone());
}

ViewDef MakeView(const char* text, double rows) {
  ViewDef v;
  v.definition = ViewDefOf(text);
  v.estimated_rows = rows;
  v.estimated_row_bytes = 40;
  for (const auto& tr : v.definition->from) {
    v.referenced_tables.push_back(tr.table);
  }
  return v;
}

TEST_F(OptimizerTest, ExactViewMatchReplacesQuery) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddView(MakeView(
                      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_totalprice) "
                      "AS total FROM orders GROUP BY o_custkey",
                      2000))
                  .ok());
  sql::Statement stmt = Parse(
      "SELECT o_custkey, COUNT(*), SUM(o_totalprice) FROM orders GROUP BY "
      "o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  // The view plan must win: scanning 2000 pre-aggregated rows beats
  // aggregating 20000.
  bool uses_view = plan->root->UsesStructure(
      config.views()[0].CanonicalName());
  EXPECT_TRUE(uses_view) << plan->root->Describe(plan->bound);
}

TEST_F(OptimizerTest, ViewWithResidualPredicate) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddView(MakeView(
                      "SELECT o_custkey, o_orderdate, COUNT(*) AS cnt FROM "
                      "orders GROUP BY o_custkey, o_orderdate",
                      15000))
                  .ok());
  // Query groups more coarsely and filters on a grouped column.
  sql::Statement stmt = Parse(
      "SELECT o_custkey, COUNT(*) FROM orders WHERE o_orderdate < "
      "'1992-03-01' GROUP BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  // Match is possible (residual on o_orderdate + re-aggregation); whether
  // the optimizer picks it depends on cost. Force the comparison:
  bool view_used =
      plan->root->UsesStructure(config.views()[0].CanonicalName());
  EXPECT_TRUE(view_used) << plan->root->Describe(plan->bound);
}

TEST_F(OptimizerTest, ViewRejectedWhenPredicateNotSubsumed) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  // View excludes rows before 1995; query wants everything.
  ASSERT_TRUE(config
                  .AddView(MakeView(
                      "SELECT o_custkey, COUNT(*) AS cnt FROM orders WHERE "
                      "o_orderdate >= '1995-01-01' GROUP BY o_custkey",
                      500))
                  .ok());
  sql::Statement stmt =
      Parse("SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(
      plan->root->UsesStructure(config.views()[0].CanonicalName()));
}

TEST_F(OptimizerTest, ViewRejectedWhenGroupingIncompatible) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  // View groups by custkey only; query needs per-date groups.
  ASSERT_TRUE(config
                  .AddView(MakeView(
                      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP "
                      "BY o_custkey",
                      2000))
                  .ok());
  sql::Statement stmt = Parse(
      "SELECT o_orderdate, COUNT(*) FROM orders GROUP BY o_orderdate");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(
      plan->root->UsesStructure(config.views()[0].CanonicalName()));
}

TEST_F(OptimizerTest, JoinViewAnswersJoinQuery) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(
      config
          .AddView(MakeView(
              "SELECT o.o_custkey, SUM(l.l_quantity) AS qty FROM orders o, "
              "lineitem l WHERE o.o_orderkey = l.l_orderkey GROUP BY "
              "o.o_custkey",
              2000))
          .ok());
  sql::Statement stmt = Parse(
      "SELECT o_custkey, SUM(l_quantity) FROM orders, lineitem WHERE "
      "o_orderkey = l_orderkey GROUP BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->root->UsesStructure(config.views()[0].CanonicalName()))
      << plan->root->Describe(plan->bound);
  // And it must be far cheaper than the base join.
  double base = Cost(opt,
                     "SELECT o_custkey, SUM(l_quantity) FROM orders, "
                     "lineitem WHERE o_orderkey = l_orderkey GROUP BY "
                     "o_custkey",
                     Configuration());
  EXPECT_LT(plan->cost, base * 0.5);
}

TEST_F(OptimizerTest, AvgFoldsFromSumAndCount) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddView(MakeView(
                      "SELECT o_custkey, SUM(o_totalprice) AS s, COUNT(*) "
                      "AS c FROM orders GROUP BY o_custkey",
                      2000))
                  .ok());
  sql::Statement stmt = Parse(
      "SELECT o_custkey, AVG(o_totalprice) FROM orders GROUP BY o_custkey");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->root->UsesStructure(config.views()[0].CanonicalName()));
}

// ---------------------------------------------------------------- DML

TEST_F(OptimizerTest, UpdateCostGrowsWithAffectedIndexes) {
  Optimizer opt = MakeOptimizer();
  const char* upd = "UPDATE orders SET o_totalprice = 0 WHERE o_custkey = 5";

  Configuration none;
  Configuration unrelated;  // index not containing o_totalprice
  ASSERT_TRUE(unrelated
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderdate"}})
                  .ok());
  Configuration related;  // index containing the updated column
  ASSERT_TRUE(related
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_totalprice"}})
                  .ok());
  double c_none = Cost(opt, upd, none);
  double c_unrelated = Cost(opt, upd, unrelated);
  double c_related = Cost(opt, upd, related);
  EXPECT_GT(c_related, c_none);
  // The unrelated index costs nothing for maintenance (it may still speed
  // up or leave unchanged the locate step).
  EXPECT_LT(std::abs(c_unrelated - c_none), c_none * 0.5);
  EXPECT_GT(c_related, c_unrelated);
}

TEST_F(OptimizerTest, IndexOnFilterColumnSpeedsUpUpdateLocation) {
  Optimizer opt = MakeOptimizer();
  const char* upd =
      "UPDATE orders SET o_totalprice = 0 WHERE o_orderkey = 42";
  Configuration with_key_index;
  ASSERT_TRUE(with_key_index
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderkey"}})
                  .ok());
  double c_with = Cost(opt, upd, with_key_index);
  double c_without = Cost(opt, upd, Configuration());
  EXPECT_LT(c_with, c_without);
}

TEST_F(OptimizerTest, DeleteMaintainsAllIndexes) {
  Optimizer opt = MakeOptimizer();
  const char* del = "DELETE FROM lineitem WHERE l_partkey = 99";
  Configuration one, three;
  ASSERT_TRUE(one
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_partkey"}})
                  .ok());
  ASSERT_TRUE(three
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_partkey"}})
                  .ok());
  ASSERT_TRUE(three
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_shipdate"}})
                  .ok());
  ASSERT_TRUE(three
                  .AddIndex(IndexDef{.table = "lineitem",
                                     .key_columns = {"l_quantity"},
                                     .included_columns = {"l_extendedprice"}})
                  .ok());
  double c1 = Cost(opt, del, one);
  double c3 = Cost(opt, del, three);
  EXPECT_GT(c3, c1);
}

TEST_F(OptimizerTest, InsertPaysForEveryStructure) {
  Optimizer opt = MakeOptimizer();
  const char* ins =
      "INSERT INTO orders VALUES (999999, 5, '1997-01-01', 120.5)";
  Configuration heavy;
  ASSERT_TRUE(heavy
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_custkey"}})
                  .ok());
  ASSERT_TRUE(heavy
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderdate"}})
                  .ok());
  ASSERT_TRUE(heavy
                  .AddView(MakeView("SELECT o_custkey, COUNT(*) AS c FROM "
                                    "orders GROUP BY o_custkey",
                                    2000))
                  .ok());
  double c_raw = Cost(opt, ins, Configuration());
  double c_heavy = Cost(opt, ins, heavy);
  EXPECT_GT(c_heavy, c_raw * 2);
}

TEST_F(OptimizerTest, UpdateSkipsViewsNotReferencingUpdatedColumn) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddView(MakeView("SELECT o_custkey, COUNT(*) AS c FROM "
                                    "orders GROUP BY o_custkey",
                                    2000))
                  .ok());
  // o_totalprice is not referenced by the view: no maintenance.
  double c_unref =
      Cost(opt, "UPDATE orders SET o_totalprice = 1 WHERE o_orderkey = 3",
           config);
  // o_custkey is referenced: maintenance applies.
  double c_ref =
      Cost(opt, "UPDATE orders SET o_custkey = 1 WHERE o_orderkey = 3",
           config);
  EXPECT_GT(c_ref, c_unref);
}

TEST_F(OptimizerTest, PlanDescribeMentionsOperatorsAndStructures) {
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddIndex(IndexDef{.table = "orders",
                                     .key_columns = {"o_orderkey"}})
                  .ok());
  sql::Statement stmt =
      Parse("SELECT o_totalprice FROM orders WHERE o_orderkey = 7");
  auto plan = opt.OptimizeSelect(stmt.select(), config);
  ASSERT_TRUE(plan.ok());
  std::string desc = plan->root->Describe(plan->bound);
  EXPECT_NE(desc.find("IndexSeek"), std::string::npos);
  EXPECT_NE(desc.find("orders"), std::string::npos);
  EXPECT_NE(desc.find("o_orderkey"), std::string::npos);
}

TEST_F(OptimizerTest, MissingStatsAreRecorded) {
  stats::StatsManager empty;
  StatsProvider provider(&empty);
  std::set<stats::StatsKey> missing;
  provider.set_missing_recorder(&missing);
  Optimizer opt(env_->catalog, provider, HardwareParams());
  sql::Statement stmt = Parse(
      "SELECT o_custkey, COUNT(*) FROM orders WHERE o_orderdate < "
      "'1995-01-01' GROUP BY o_custkey");
  ASSERT_TRUE(opt.OptimizeSelect(stmt.select(), Configuration()).ok());
  // Both predicate and grouping columns were wanted.
  bool saw_orderdate = false, saw_custkey = false;
  for (const auto& k : missing) {
    if (k.columns == std::vector<std::string>{"o_orderdate"}) {
      saw_orderdate = true;
    }
    if (k.columns == std::vector<std::string>{"o_custkey"}) {
      saw_custkey = true;
    }
  }
  EXPECT_TRUE(saw_orderdate);
  EXPECT_TRUE(saw_custkey);
}


TEST_F(OptimizerTest, IndexedViewSeekOnGroupByPrefix) {
  // Residual predicates on the view's leading GROUP BY column are costed
  // as seeks into the view's (implicit) clustered index, not full scans.
  Optimizer opt = MakeOptimizer();
  Configuration config;
  ASSERT_TRUE(config
                  .AddView(MakeView(
                      "SELECT o_custkey, o_orderdate, COUNT(*) AS cnt FROM "
                      "orders GROUP BY o_custkey, o_orderdate",
                      18000))
                  .ok());
  // Equality on the LEADING group column: seek.
  double lead = Cost(opt,
                     "SELECT o_custkey, COUNT(*) FROM orders WHERE "
                     "o_custkey = 17 GROUP BY o_custkey",
                     config);
  // Range on the SECOND group column only: no usable prefix, full scan.
  double non_lead = Cost(opt,
                         "SELECT o_orderdate, COUNT(*) FROM orders WHERE "
                         "o_orderdate < '1992-02-01' GROUP BY o_orderdate",
                         config);
  // Both use the view; the leading-prefix probe must be far cheaper.
  sql::Statement s1 = Parse(
      "SELECT o_custkey, COUNT(*) FROM orders WHERE o_custkey = 17 GROUP "
      "BY o_custkey");
  auto p1 = opt.OptimizeSelect(s1.select(), config);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p1->root->UsesStructure(config.views()[0].CanonicalName()))
      << p1->root->Describe(p1->bound);
  EXPECT_LT(lead, non_lead * 0.5);
}

}  // namespace
}  // namespace dta::optimizer
