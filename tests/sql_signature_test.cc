#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/signature.h"
#include "sql/value.h"

namespace dta::sql {
namespace {

Statement Parse(const char* q) {
  auto r = ParseStatement(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
  return std::move(r).value();
}

TEST(SignatureTest, SameTemplateDifferentConstants) {
  Statement a = Parse("SELECT x FROM t WHERE a = 5 AND b < 100");
  Statement b = Parse("SELECT x FROM t WHERE a = 99 AND b < 3");
  EXPECT_EQ(SignatureText(a), SignatureText(b));
  EXPECT_EQ(SignatureHash(a), SignatureHash(b));
}

TEST(SignatureTest, CaseInsensitiveIdentifiers) {
  Statement a = Parse("SELECT X FROM T WHERE A = 1");
  Statement b = Parse("select x from t where a = 2");
  EXPECT_EQ(SignatureText(a), SignatureText(b));
}

TEST(SignatureTest, DifferentColumnsDiffer) {
  Statement a = Parse("SELECT x FROM t WHERE a = 5");
  Statement b = Parse("SELECT x FROM t WHERE b = 5");
  EXPECT_NE(SignatureText(a), SignatureText(b));
}

TEST(SignatureTest, DifferentOperatorsDiffer) {
  Statement a = Parse("SELECT x FROM t WHERE a = 5");
  Statement b = Parse("SELECT x FROM t WHERE a < 5");
  EXPECT_NE(SignatureText(a), SignatureText(b));
}

TEST(SignatureTest, UpdatesTemplatizeToo) {
  Statement a = Parse("UPDATE t SET v = 10 WHERE k = 1");
  Statement b = Parse("UPDATE t SET v = 20 WHERE k = 999");
  EXPECT_EQ(SignatureText(a), SignatureText(b));
}

TEST(SignatureTest, InListLengthMatters) {
  // IN lists of different lengths are different shapes (templates).
  Statement a = Parse("SELECT x FROM t WHERE a IN (1, 2)");
  Statement b = Parse("SELECT x FROM t WHERE a IN (1, 2, 3)");
  EXPECT_NE(SignatureText(a), SignatureText(b));
}

TEST(SignatureTest, TextContainsPlaceholders) {
  Statement a = Parse("SELECT x FROM t WHERE a = 5 AND s LIKE 'pre%'");
  std::string sig = SignatureText(a);
  EXPECT_EQ(sig.find('5'), std::string::npos);
  EXPECT_EQ(sig.find("pre%"), std::string::npos);
  EXPECT_NE(sig.find('?'), std::string::npos);
}

TEST(ValueTest, CompareAndPromotion) {
  EXPECT_EQ(Value::Int(5).Compare(Value::Double(5.0)), 0);
  EXPECT_LT(Value::Int(4).Compare(Value::Double(4.5)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
}

TEST(ValueTest, Literals) {
  EXPECT_EQ(Value::Int(-3).ToSqlLiteral(), "-3");
  EXPECT_EQ(Value::String("a'b").ToSqlLiteral(), "'a''b'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Double(2.5).ToSqlLiteral(), "2.5");
}

TEST(ValueTest, IsoDateOrderingMatchesChronology) {
  Value a = Value::String("1994-01-31");
  Value b = Value::String("1994-02-01");
  Value c = Value::String("1995-01-01");
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(b.Compare(c), 0);
}

}  // namespace
}  // namespace dta::sql
