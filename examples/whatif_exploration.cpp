// Exploratory ("what-if") analysis and user-specified configurations —
// paper §6.2/§6.3.
//
// The scenario from the paper: a DBA must decide whether a large fact table
// should be range-partitioned by month or by quarter. Either is acceptable
// for manageability; the DBA wants the one that performs better — WITHOUT
// physically repartitioning the table. DTA evaluates both as user-specified
// configurations and the DBA compares.

#include <cstdio>

#include "common/strings.h"
#include "dta/tuning_session.h"
#include "server/server.h"
#include "storage/datagen.h"
#include "workloads/tpch.h"

using namespace dta;

namespace {

catalog::PartitionScheme ByInterval(int months_per_partition) {
  catalog::PartitionScheme scheme;
  scheme.column = "o_orderdate";
  for (int year = 1992; year <= 1998; ++year) {
    for (int month = 1; month <= 12; month += months_per_partition) {
      scheme.boundaries.push_back(sql::Value::String(
          StrFormat("%04d-%02d-01", year, month)));
    }
  }
  return scheme;
}

}  // namespace

int main() {
  // TPC-H metadata at the 1GB scale; statistics are synthesized on demand,
  // no data (and no physical repartitioning!) is ever needed.
  server::Server prod("prod", optimizer::HardwareParams());
  if (Status s = workloads::AttachTpch(&prod, 1.0, /*with_data=*/false, 11);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  workload::Workload workload = workloads::TpchQueries(11);

  catalog::PartitionScheme by_month = ByInterval(1);
  catalog::PartitionScheme by_quarter = ByInterval(3);

  std::printf("Candidate manageability designs for the orders table:\n");
  std::printf("  by month   : %d partitions\n", by_month.PartitionCount());
  std::printf("  by quarter : %d partitions\n",
              by_quarter.PartitionCount());

  // Ask DTA to complete the design around each partitioning choice: the
  // user-specified configuration is honored verbatim (never dropped), and
  // alignment keeps all orders indexes partitioned identically.
  double improvement_month = 0, improvement_quarter = 0;
  catalog::Configuration best_month, best_quarter;
  for (int round = 0; round < 2; ++round) {
    tuner::TuningOptions options;
    options.require_alignment = true;
    options.tune_partitioning = false;  // partitioning is the DBA's call
    options.user_specified.SetTablePartitioning(
        "orders", round == 0 ? by_month : by_quarter);
    tuner::TuningSession session(&prod, options);
    auto r = session.Tune(workload);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    if (round == 0) {
      improvement_month = r->ImprovementPercent();
      best_month = r->recommendation;
    } else {
      improvement_quarter = r->ImprovementPercent();
      best_quarter = r->recommendation;
    }
  }
  std::printf("\nDTA-completed design, orders partitioned by month:   "
              "%.1f%% improvement\n", improvement_month);
  std::printf("DTA-completed design, orders partitioned by quarter: "
              "%.1f%% improvement\n", improvement_quarter);
  std::printf("=> pick %s\n\n", improvement_month >= improvement_quarter
                                    ? "BY MONTH"
                                    : "BY QUARTER");

  // Iterative refinement (§6.3): the DBA edits the winning recommendation —
  // say, drops a wide index they dislike — and re-evaluates it without
  // re-tuning.
  catalog::Configuration& winner =
      improvement_month >= improvement_quarter ? best_month : best_quarter;
  std::string dropped;
  for (const auto& ix : winner.indexes()) {
    if (!ix.constraint_enforcing && ix.included_columns.size() >= 2) {
      dropped = ix.CanonicalName();
      break;
    }
  }
  if (!dropped.empty()) {
    catalog::Configuration edited = winner;
    edited.RemoveStructure(dropped);
    tuner::TuningSession session(&prod, tuner::TuningOptions());
    auto eval = session.EvaluateConfiguration(workload, edited);
    if (eval.ok()) {
      std::printf("After dropping %s:\n  %.1f%% (vs current design)\n",
                  dropped.c_str(), eval->ChangePercent());
      std::printf("The DBA can iterate like this until satisfied; no "
                  "structure is ever physically built during analysis.\n");
    }
  }
  return 0;
}
