// Quickstart: create a server with a small database, capture a workload,
// run the Database Tuning Advisor, and inspect the recommendation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "dta/tuning_session.h"
#include "sql/parser.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "storage/datagen.h"
#include "workload/workload.h"

using namespace dta;

int main() {
  // ---- 1. A server with one database: an orders table with real data.
  server::Server prod("prod", optimizer::HardwareParams());

  catalog::TableSchema orders(
      "orders", {{"o_id", catalog::ColumnType::kInt, 8},
                 {"o_customer", catalog::ColumnType::kInt, 8},
                 {"o_date", catalog::ColumnType::kString, 10},
                 {"o_amount", catalog::ColumnType::kDouble, 8}});
  orders.set_row_count(200000);
  orders.SetPrimaryKey({"o_id"});

  catalog::Database db("shop");
  if (Status s = db.AddTable(orders); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = prod.AttachDatabase(std::move(db)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  Random rng(7);
  storage::TableGenSpec spec;
  spec.schema = orders;
  spec.column_specs = {storage::ColumnSpec::Sequential(),
                       storage::ColumnSpec::ZipfInt(1, 5000, 0.7),
                       storage::ColumnSpec::Date("2003-01-01", 900),
                       storage::ColumnSpec::UniformReal(5, 2000)};
  spec.rows = 200000;
  auto data = storage::GenerateTable(spec, &rng);
  if (!data.ok() ||
      !prod.AttachTableData("shop", std::move(data).value()).ok()) {
    std::fprintf(stderr, "data generation failed\n");
    return 1;
  }

  // The current physical design: just the primary-key constraint index.
  catalog::Configuration raw;
  (void)raw.AddIndex({.table = "orders",
                      .key_columns = {"o_id"},
                      .constraint_enforcing = true});
  (void)prod.ImplementConfiguration(raw);

  // ---- 2. A workload, as a SQL script (a profiler trace would do too).
  auto workload = workload::Workload::FromScript(
      "SELECT o_amount FROM orders WHERE o_customer = 42;"
      "SELECT o_amount FROM orders WHERE o_customer = 17;"
      "SELECT o_customer, SUM(o_amount), COUNT(*) FROM orders "
      "  WHERE o_date >= '2004-01-01' GROUP BY o_customer;"
      "SELECT o_id, o_amount FROM orders WHERE o_date BETWEEN "
      "  '2004-06-01' AND '2004-06-30' ORDER BY o_id;"
      "UPDATE orders SET o_amount = 99.5 WHERE o_id = 31337;");
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  // ---- 3. Tune. Options select the feature set and constraints.
  tuner::TuningOptions options;
  options.storage_bytes = 64ull * 1024 * 1024;  // at most 64 MB of indexes

  tuner::TuningSession session(&prod, options);
  auto result = session.Tune(*workload);
  if (!result.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // ---- 4. Inspect the recommendation.
  std::printf("Expected improvement: %.1f%% (cost %.2f -> %.2f)\n",
              result->ImprovementPercent(), result->current_cost,
              result->recommended_cost);
  std::printf("Recommended structures:\n");
  for (const auto& ix : result->recommendation.indexes()) {
    if (!ix.constraint_enforcing) {
      std::printf("  CREATE %sINDEX ON %s\n",
                  ix.clustered ? "CLUSTERED " : "",
                  ix.CanonicalName().c_str());
    }
  }
  for (const auto& v : result->recommendation.views()) {
    std::printf("  CREATE MATERIALIZED VIEW %s\n", v.CanonicalName().c_str());
  }
  for (const auto& [table, scheme] :
       result->recommendation.table_partitioning()) {
    std::printf("  PARTITION %s BY %s\n", table.c_str(),
                scheme.CanonicalString().c_str());
  }
  std::printf("\nPer-statement report:\n%s\n",
              result->report.ToText().c_str());

  // ---- 5. Implement it and actually run a query.
  (void)prod.ImplementConfiguration(result->recommendation);
  auto stmt = sql::ParseStatement(
      "SELECT o_amount FROM orders WHERE o_customer = 42");
  double elapsed = 0;
  auto rows = prod.ExecuteSelect(stmt->select(), &elapsed);
  if (rows.ok()) {
    std::printf("Query under recommended design: %zu rows in %.2f ms\n",
                rows->rows.size(), elapsed);
  }

  // ---- 6. Everything is scriptable via the public XML schema (§6.1).
  tuner::TuningInput input;
  input.server_name = prod.name();
  input.workload = std::move(*workload);
  input.options = options;
  std::string doc =
      tuner::TuningOutputToXml(input, result->recommendation, result->report);
  std::printf("\nDTAXML output document: %zu bytes (see dta/xml_schema.h)\n",
              doc.size());
  return 0;
}
