// Tuning a production server by exploiting a test server — paper §5.3.
//
// The production server holds a large database it cannot afford to tune
// directly (what-if optimization imposes load). The flow:
//   1. Script the production metadata (no data!) and build a test server
//      from it. The test server may have much weaker hardware.
//   2. Tune on the test server; DTA simulates the PRODUCTION hardware in
//      every what-if call, so recommendations are valid for production.
//   3. Statistics are created on production only when needed and imported.
//   4. Apply the recommendation to production.

#include <cstdio>

#include "dta/tuning_session.h"
#include "server/server.h"
#include "workloads/tpch.h"

using namespace dta;

int main() {
  // Production: a 10GB-class TPC-H database on strong hardware.
  server::Server prod("production",
                      optimizer::HardwareParams::ProductionClass());
  if (Status s = workloads::AttachTpch(&prod, 10.0, /*with_data=*/false, 3);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Step 1: metadata scripting. The script carries schemas and row counts —
  // never data — so it is tiny and fast to produce.
  std::string script = prod.ScriptMetadata();
  std::printf("Metadata script: %zu bytes for %zu tables\n", script.size(),
              prod.catalog().FindDatabase("tpch")->tables().size());

  auto test = server::Server::FromMetadataScript(
      script, "test", optimizer::HardwareParams::TestClass());
  if (!test.ok()) {
    std::fprintf(stderr, "%s\n", test.status().ToString().c_str());
    return 1;
  }
  std::printf("Test server: %d CPUs / %.0f MB vs production %d CPUs / %.0f "
              "MB\n\n",
              (*test)->hardware().cpu_count, (*test)->hardware().memory_mb,
              prod.hardware().cpu_count, prod.hardware().memory_mb);

  // Steps 2-3: tune on the test server.
  prod.ResetOverhead();
  tuner::TuningSession session(&prod, tuner::TuningOptions());
  if (Status s = session.UseTestServer(test->get()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto result = session.Tune(workloads::TpchQueries(3));
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Expected improvement: %.1f%%\n", result->ImprovementPercent());
  std::printf("What-if optimizations on the test server: %zu calls, "
              "%.0f ms simulated load\n",
              (*test)->whatif_call_count(), (*test)->overhead_ms());
  std::printf("Load imposed on production: %.0f ms — statistics creation "
              "only (%zu statistics)\n",
              prod.overhead_ms(), result->stats_created);

  // Step 4: apply the recommendation to production.
  if (Status s = prod.ImplementConfiguration(result->recommendation);
      s.ok()) {
    std::printf("\nRecommendation applied to production: %zu structures.\n",
                result->recommendation.StructureCount());
  }
  return 0;
}
