// Driving DTA entirely through the public XML schema — paper §6.1.
//
// Tools build on DTA by exchanging DTAXML documents: the input document
// names the server, carries the workload and the tuning options (including
// a user-specified partial configuration); the output document carries the
// recommendation and the analysis report. This example round-trips both.

#include <cstdio>

#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "workloads/tpch.h"

using namespace dta;

int main() {
  server::Server prod("prod01", optimizer::HardwareParams());
  if (Status s = workloads::AttachTpch(&prod, 1.0, /*with_data=*/false, 5);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // A hand-written DTAXML input: tune indexes only, under a storage bound,
  // honoring a user-specified index the DBA insists on.
  const char* input_doc = R"(<?xml version="1.0"?>
<DTAXML>
  <Input>
    <Server Name="prod01"/>
    <Workload>
      <Statement>SELECT l_returnflag, SUM(l_quantity) FROM lineitem
        WHERE l_shipdate &lt;= '1998-09-01' GROUP BY l_returnflag</Statement>
      <Statement Weight="5">SELECT o_orderpriority, COUNT(*) FROM orders
        WHERE o_orderdate &gt;= '1995-01-01' GROUP BY o_orderpriority</Statement>
      <Statement>SELECT c_custkey, COUNT(*) FROM customer, orders
        WHERE c_custkey = o_custkey GROUP BY c_custkey</Statement>
    </Workload>
    <TuningOptions Indexes="true" MaterializedViews="false"
                   Partitioning="false" StorageBytes="2000000000">
      <UserSpecifiedConfiguration>
        <Configuration>
          <Index Table="orders" Clustered="false">
            <KeyColumn>o_orderdate</KeyColumn>
          </Index>
        </Configuration>
      </UserSpecifiedConfiguration>
    </TuningOptions>
  </Input>
</DTAXML>)";

  auto input = tuner::TuningInputFromXml(input_doc);
  if (!input.ok()) {
    std::fprintf(stderr, "parse input: %s\n",
                 input.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed DTAXML input: server '%s', %zu statements, "
              "user-specified structures: %zu\n",
              input->server_name.c_str(), input->workload.size(),
              input->options.user_specified.StructureCount());

  tuner::TuningSession session(&prod, input->options);
  auto result = session.Tune(input->workload);
  if (!result.ok()) {
    std::fprintf(stderr, "tune: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::string output_doc = tuner::TuningOutputToXml(
      *input, result->recommendation, result->report);
  std::printf("\n---- DTAXML output (%zu bytes) ----\n%s\n",
              output_doc.size(), output_doc.c_str());

  // A downstream tool extracts the configuration back out of the document —
  // e.g. to feed a modified version into another tuning round (§6.3).
  auto extracted = tuner::RecommendationFromXml(output_doc);
  if (extracted.ok()) {
    std::printf("Extracted %zu structures back from the document; "
                "round-trip fingerprints %s.\n",
                extracted->StructureCount(),
                extracted->Fingerprint() ==
                        result->recommendation.Fingerprint()
                    ? "match"
                    : "DIFFER");
  }
  return 0;
}
