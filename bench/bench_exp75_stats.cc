// Reproduces §7.5 of the paper: impact of reduced statistics creation, on
// TPC-H and PSOFT. Measures (a) reduction in the number of statistics
// created and (b) reduction in (simulated) statistics creation time, with
// the guarantee of zero quality change (only redundant statistical
// information is skipped).
//
// Paper numbers: #statistics -55% (TPC-H) / -24% (PSOFT); creation time
// -62% / -31%.

#include "bench_util.h"
#include "common/strings.h"
#include "dta/tuning_session.h"
#include "workloads/psoft.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

struct StatsNumbers {
  size_t created = 0;
  double time_ms = 0;
  double quality = 0;
};

template <typename MakeServer, typename MakeWorkload>
void RunBoth(const char* name, MakeServer make_server,
             MakeWorkload make_workload, bench::TablePrinter* table) {
  StatsNumbers naive, reduced;
  for (bool use_reduced : {false, true}) {
    auto server = make_server();
    workload::Workload w = make_workload();
    tuner::TuningOptions opts;
    opts.reduced_statistics = use_reduced;
    tuner::TuningSession session(server.get(), opts);
    auto r = session.Tune(w);
    if (!r.ok()) {
      std::fprintf(stderr, "tune %s: %s\n", name,
                   r.status().ToString().c_str());
      return;
    }
    StatsNumbers& n = use_reduced ? reduced : naive;
    n.created = r->stats_created;
    n.time_ms = r->stats_creation_ms;
    n.quality = r->ImprovementPercent();
  }
  double count_red =
      naive.created > 0
          ? 100.0 * (static_cast<double>(naive.created) - reduced.created) /
                naive.created
          : 0;
  double time_red = naive.time_ms > 0
                        ? 100.0 * (naive.time_ms - reduced.time_ms) /
                              naive.time_ms
                        : 0;
  table->AddRow({name, StrFormat("%zu", naive.created),
                 StrFormat("%zu", reduced.created),
                 StrFormat("%.0f%%", count_red),
                 StrFormat("%.0f%%", time_red),
                 StrFormat("%.1f%%", naive.quality - reduced.quality)});
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  const bool full = bench::FullScale();

  bench::Banner("Experiment 7.5: Impact of reduced statistics creation");
  bench::TablePrinter t({"Workload", "#Stats naive", "#Stats reduced",
                         "#Stats reduction", "Time reduction",
                         "Quality delta"});

  RunBoth(
      "TPC-H",
      [] {
        auto s = std::make_unique<server::Server>(
            "prod", optimizer::HardwareParams());
        Status st = workloads::AttachTpch(s.get(), 10.0, false, 7);
        if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return s;
      },
      [] { return workloads::TpchQueries(7); }, &t);

  RunBoth(
      "PSOFT",
      [full] {
        auto s = std::make_unique<server::Server>(
            "prod", optimizer::HardwareParams());
        Status st = workloads::AttachPsoft(s.get(), 3);
        if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return s;
      },
      [full] { return workloads::PsoftWorkload(full ? 6000 : 1500, 3); },
      &t);

  t.Print();
  std::printf(
      "\nPaper (7.5): #stats -55%% (TPC-H) / -24%% (PSOFT); time -62%% / "
      "-31%%; quality delta exactly 0 in both cases (only redundant "
      "statistics are skipped).\n");
  return 0;
}
