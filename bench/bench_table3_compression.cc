// Reproduces Table 3 of the paper (§7.4): impact of workload compression on
// the quality and running time of DTA, on TPCH22, PSOFT and SYNT1.
//
// Paper shape: TPCH22 (22 all-distinct queries) does not compress at all;
// the templatized PSOFT and SYNT1 workloads compress dramatically (5.8x and
// 43x running-time reduction) with <= ~1% quality loss.

#include <chrono>
#include <functional>

#include "bench_util.h"
#include "common/strings.h"
#include "dta/tuning_session.h"
#include "workloads/psoft.h"
#include "workloads/synt1.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

struct WorkloadCase {
  std::string name;
  std::function<std::unique_ptr<server::Server>()> make_server;
  std::function<workload::Workload()> make_workload;
};

struct CaseResult {
  double quality_with = 0, quality_without = 0;
  double time_with_ms = 0, time_without_ms = 0;
  size_t tuned_with = 0, tuned_without = 0;
};

CaseResult RunCase(const WorkloadCase& c) {
  CaseResult out;
  for (bool compression : {true, false}) {
    auto server = c.make_server();
    workload::Workload w = c.make_workload();
    tuner::TuningOptions opts;
    opts.tune_partitioning = false;  // match the paper's I+MV tuning here
    opts.workload_compression = compression;
    tuner::TuningSession session(server.get(), opts);
    auto r = session.Tune(w);
    if (!r.ok()) {
      std::fprintf(stderr, "tune %s (compression=%d): %s\n", c.name.c_str(),
                   compression, r.status().ToString().c_str());
      continue;
    }
    // Quality is always judged against the FULL workload (as in the
    // paper): a recommendation tuned on representatives must still serve
    // the statements they stood for.
    auto eval = session.EvaluateConfiguration(w, r->recommendation);
    double quality =
        eval.ok() ? eval->ChangePercent() : r->ImprovementPercent();
    if (compression) {
      out.quality_with = quality;
      out.time_with_ms = r->tuning_time_ms;
      out.tuned_with = r->events_tuned;
    } else {
      out.quality_without = quality;
      out.time_without_ms = r->tuning_time_ms;
      out.tuned_without = r->events_tuned;
    }
  }
  return out;
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  const bool full = bench::FullScale();
  const size_t psoft_n = full ? 6000 : 1500;
  const size_t synt1_n = full ? 8000 : 2000;

  bench::Banner("Table 3: Impact of workload compression");

  std::vector<WorkloadCase> cases;
  cases.push_back(
      {"TPCH22",
       [] {
         auto s = std::make_unique<server::Server>(
             "prod", optimizer::HardwareParams());
         Status st = workloads::AttachTpch(s.get(), 1.0, false, 7);
         if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
         return s;
       },
       [] { return workloads::TpchQueries(7); }});
  cases.push_back(
      {"PSOFT",
       [] {
         auto s = std::make_unique<server::Server>(
             "prod", optimizer::HardwareParams());
         Status st = workloads::AttachPsoft(s.get(), 3);
         if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
         return s;
       },
       [psoft_n] { return workloads::PsoftWorkload(psoft_n, 3); }});
  cases.push_back(
      {"SYNT1",
       [] {
         auto s = std::make_unique<server::Server>(
             "prod", optimizer::HardwareParams());
         Status st = workloads::AttachSynt1(s.get(), 1000000, 5);
         if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
         return s;
       },
       [synt1_n] { return workloads::Synt1Workload(synt1_n, 100, 5); }});

  bench::TablePrinter t({"Workload", "#Stmts", "Tuned w/comp",
                         "Quality decrease", "Running-time reduction"});
  for (const auto& c : cases) {
    CaseResult r = RunCase(c);
    double decrease = r.quality_without - r.quality_with;
    double speedup =
        r.time_with_ms > 0 ? r.time_without_ms / r.time_with_ms : 1.0;
    t.AddRow({c.name, StrFormat("%zu", r.tuned_without),
              StrFormat("%zu", r.tuned_with),
              StrFormat("%.1f%%", decrease), StrFormat("%.1fx", speedup)});
  }
  t.Print();
  std::printf(
      "\nPaper (Table 3): TPCH22 0%% / 1x (no compression possible), "
      "PSOFT 0.5%% / 5.8x, SYNT1 1%% / 43x. Expected shape: speedup grows "
      "with workload templatization at ~no quality loss.\n");
  return 0;
}
