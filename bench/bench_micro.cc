// Component micro-benchmarks (google-benchmark): parser, signatures,
// histogram construction and estimation, what-if optimizer calls, workload
// compression, Greedy(m,k), XML round trips, and the serial-vs-parallel
// tuning pipeline.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/strings.h"
#include "dta/greedy.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "sql/parser.h"
#include "sql/signature.h"
#include "stats/builder.h"
#include "storage/datagen.h"
#include "workload/compression.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

const char* kJoinQuery =
    "SELECT o_custkey, SUM(l_extendedprice * (1 - l_discount)) FROM "
    "customer, orders, lineitem WHERE c_custkey = o_custkey AND l_orderkey "
    "= o_orderkey AND o_orderdate < '1995-03-15' AND l_shipdate > "
    "'1995-03-15' GROUP BY o_custkey ORDER BY o_custkey";

void BM_ParseStatement(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::ParseStatement(kJoinQuery);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseStatement);

void BM_SignatureHash(benchmark::State& state) {
  auto stmt = sql::ParseStatement(kJoinQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::SignatureHash(*stmt));
  }
}
BENCHMARK(BM_SignatureHash);

void BM_HistogramBuild(benchmark::State& state) {
  Random rng(1);
  std::vector<sql::Value> values;
  for (int i = 0; i < state.range(0); ++i) {
    values.push_back(sql::Value::Int(rng.Uniform(0, 100000)));
  }
  for (auto _ : state) {
    auto h = stats::Histogram::Build(values, 1.0);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramBuild)->Arg(1000)->Arg(50000);

void BM_HistogramEstimate(benchmark::State& state) {
  Random rng(1);
  std::vector<sql::Value> values;
  for (int i = 0; i < 50000; ++i) {
    values.push_back(sql::Value::Int(rng.Uniform(0, 100000)));
  }
  auto h = stats::Histogram::Build(std::move(values), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.EstimateRange(
        sql::Value::Int(1000), true, sql::Value::Int(60000), false));
  }
}
BENCHMARK(BM_HistogramEstimate);

// What-if optimizer call on the TPC-H catalog (metadata-only, SF 1).
class WhatIfFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (server_ != nullptr) return;
    server_ = std::make_unique<server::Server>(
        "prod", optimizer::HardwareParams());
    Status st = workloads::AttachTpch(server_.get(), 1.0, false, 7);
    (void)st;
    stmt_ = std::make_unique<sql::Statement>(
        std::move(sql::ParseStatement(kJoinQuery)).value());
    config_ = workloads::TpchRawConfiguration();
    catalog::IndexDef ix;
    ix.table = "lineitem";
    ix.key_columns = {"l_shipdate"};
    ix.included_columns = {"l_extendedprice", "l_discount", "l_orderkey"};
    Status s2 = config_.AddIndex(std::move(ix));
    (void)s2;
  }
  static std::unique_ptr<server::Server> server_;
  static std::unique_ptr<sql::Statement> stmt_;
  static catalog::Configuration config_;
};
std::unique_ptr<server::Server> WhatIfFixture::server_;
std::unique_ptr<sql::Statement> WhatIfFixture::stmt_;
catalog::Configuration WhatIfFixture::config_;

BENCHMARK_F(WhatIfFixture, WhatIfCostJoinQuery)(benchmark::State& state) {
  for (auto _ : state) {
    auto r = server_->WhatIfCost(*stmt_, config_);
    benchmark::DoNotOptimize(r);
  }
}

void BM_WorkloadCompression(benchmark::State& state) {
  Random rng(3);
  workload::Workload w;
  for (int i = 0; i < state.range(0); ++i) {
    auto stmt = sql::ParseStatement(StrFormat(
        "SELECT a FROM t%d WHERE k = %lld", i % 20,
        static_cast<long long>(rng.Uniform(1, 100000))));
    w.Add(std::move(stmt).value());
  }
  for (auto _ : state) {
    auto c = workload::CompressWorkload(w);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_WorkloadCompression)->Arg(1000)->Arg(5000);

void BM_GreedySearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto eval = [n](const std::vector<size_t>& subset) -> Result<double> {
    double cost = 1000;
    for (size_t i : subset) {
      cost -= 100.0 / (1.0 + static_cast<double>(i));
    }
    return cost;
  };
  for (auto _ : state) {
    auto r = tuner::GreedySearch(n, 1, 10, 1000, eval);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GreedySearch)->Arg(32)->Arg(128);

// End-to-end tuning pipeline on the TPC-H workload, serial vs parallel
// what-if costing. Wall-clock (real time) is the quantity of interest: on a
// 4-core runner Threads:4 should be >= 2x faster than Threads:1, with an
// identical recommendation. The server is shared across runs, so statistics
// creation happens once and iterations measure the costing-dominated
// pipeline.
class TuneTpchFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    // Fresh server per run: tuning creates statistics on the server, so a
    // shared instance would hand later runs a different starting state and
    // make the serial/parallel improvement numbers incomparable.
    server_ = std::make_unique<server::Server>(
        "prod", optimizer::HardwareParams());
    Status st = workloads::AttachTpch(server_.get(), 0.05,
                                      /*with_data=*/false, 7);
    (void)st;
    Status s2 = server_->ImplementConfiguration(
        workloads::TpchRawConfiguration());
    (void)s2;
    workload_ = std::make_unique<workload::Workload>(
        workloads::TpchQueriesPrefix(12, 42));
    // Untimed warm-up tune so every timed iteration starts from the same
    // statistics-warm server.
    tuner::TuningSession warmup(server_.get(), tuner::TuningOptions{});
    (void)warmup.Tune(*workload_);
  }
  void TearDown(const benchmark::State&) override {
    workload_.reset();
    server_.reset();
  }
  std::unique_ptr<server::Server> server_;
  std::unique_ptr<workload::Workload> workload_;
};

BENCHMARK_DEFINE_F(TuneTpchFixture, TunePipeline)(benchmark::State& state) {
  tuner::TuningOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  double improvement = 0;
  for (auto _ : state) {
    tuner::TuningSession session(server_.get(), opts);
    auto r = session.Tune(*workload_);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    improvement = r->ImprovementPercent();
    benchmark::DoNotOptimize(r);
  }
  state.counters["improvement_pct"] = improvement;
}
BENCHMARK_REGISTER_F(TuneTpchFixture, TunePipeline)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_XmlConfigurationRoundTrip(benchmark::State& state) {
  catalog::Configuration config = workloads::TpchRawConfiguration();
  for (auto _ : state) {
    auto elem = tuner::ConfigurationToXml(config);
    auto parsed = tuner::ConfigurationFromXml(*elem);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_XmlConfigurationRoundTrip);

}  // namespace
}  // namespace dta

BENCHMARK_MAIN();
