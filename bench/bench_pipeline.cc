// bench_pipeline — the CI bench-regression workload.
//
// Runs the TPC-H tuning pipeline under seven scenarios (serial, underived,
// parallel, checkpointed, faulty, sharded, sharded_faulty) and emits one
// observability document (dta-observability-v1, the same schema dta_cli
// --metrics-json writes) with, per scenario:
//   counters  bench.<scenario>.whatif_calls   — deterministic call counts
//   gauges    bench.<scenario>.wall_ms        — tuning wall-clock
// plus
//   gauges    bench.checkpoint_overhead_pct   — checkpoint I/O time as a
//             percentage of the checkpointed run's wall-clock (span-based,
//             not run-vs-run, so it is robust to machine noise)
//             bench.fault_overhead_pct        — same for the faulty run's
//             extra wall-clock over the serial run
//             bench.shard_failover_overhead_pct — extra wall-clock of the
//             sharded run with one shard fault-killed mid-run over the
//             healthy sharded run (gated at an absolute ceiling)
//             bench.whatif_calls_saved_pct    — real what-if calls the
//             derived-costing layer avoided, as a percentage of the
//             underived (derivation-off) run's calls; counter-derived and
//             deterministic, gated at a floor. The recommendations of the
//             two runs are required to be byte-identical — a divergence
//             fails the benchmark itself.
//
// tools/bench_compare.py diffs this document against bench/baseline.json:
// locally (ctest) with --ignore-wall-clock so only the deterministic call
// counts gate; in CI's bench-regression job with wall-clock enforced at 10%.
//
// Usage: bench_pipeline [output.json]   (default stdout)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "workload/workload.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

constexpr double kScaleFactor = 0.25;
constexpr size_t kQueries = 22;
constexpr uint64_t kSeed = 42;

// One pipeline run on a fresh, statistics-warm server (the warm-up tune
// creates the statistics so the timed run measures the costing-dominated
// pipeline, exactly like the TunePipeline micro-benchmark).
Result<tuner::TuningResult> RunScenario(const tuner::TuningOptions& opts,
                                        const workload::Workload& wl) {
  auto server = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  DTA_RETURN_IF_ERROR(workloads::AttachTpch(server.get(), kScaleFactor,
                                            /*with_data=*/false, 7));
  DTA_RETURN_IF_ERROR(
      server->ImplementConfiguration(workloads::TpchRawConfiguration()));
  {
    tuner::TuningSession warmup(server.get(), tuner::TuningOptions{});
    auto w = warmup.Tune(wl);
    if (!w.ok()) return w.status();
  }
  tuner::TuningSession session(server.get(), opts);
  return session.Tune(wl);
}

void Record(MetricsRegistry* metrics, const std::string& scenario,
            const tuner::TuningResult& r) {
  metrics->GetCounter("bench." + scenario + ".whatif_calls")
      ->Increment(r.whatif_calls);
  metrics->GetGauge("bench." + scenario + ".wall_ms")->Set(r.tuning_time_ms);
}

int Run(int argc, char** argv) {
  workload::Workload wl = workloads::TpchQueriesPrefix(kQueries, kSeed);
  MetricsRegistry metrics;

  tuner::TuningOptions serial_opts;
  serial_opts.num_threads = 1;
  auto serial = RunScenario(serial_opts, wl);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial: %s\n", serial.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "serial", *serial);

  // Derivation switched off: every cache miss makes a real what-if call.
  // The delta against the (derived) serial run is the calls-saved gauge,
  // and the two recommendations must match byte-for-byte.
  tuner::TuningOptions underived_opts;
  underived_opts.num_threads = 1;
  underived_opts.derived_costing = false;
  auto underived = RunScenario(underived_opts, wl);
  if (!underived.ok()) {
    std::fprintf(stderr, "underived: %s\n",
                 underived.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "underived", *underived);
  const std::string serial_rec =
      tuner::ConfigurationToXml(serial->recommendation)->ToString();
  const std::string underived_rec =
      tuner::ConfigurationToXml(underived->recommendation)->ToString();
  if (serial_rec != underived_rec) {
    std::fprintf(stderr,
                 "derived costing changed the recommendation:\n"
                 "--- derived ---\n%s\n--- underived ---\n%s\n",
                 serial_rec.c_str(), underived_rec.c_str());
    return 1;
  }

  tuner::TuningOptions parallel_opts;
  parallel_opts.num_threads = 4;
  auto parallel = RunScenario(parallel_opts, wl);
  if (!parallel.ok()) {
    std::fprintf(stderr, "parallel: %s\n",
                 parallel.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "parallel", *parallel);

  const std::string ckpt_path = "bench_pipeline_ckpt.tmp";
  tuner::TuningOptions ckpt_opts;
  ckpt_opts.num_threads = 1;
  ckpt_opts.checkpoint_path = ckpt_path;
  // The production checkpoint configuration: round snapshots amortized to
  // 0.5% of wall-clock so the total — including the constant per-session
  // phase-boundary snapshots, which this short run cannot amortize the way
  // an hours-long tuning would — stays under the 1% ROADMAP target.
  ckpt_opts.checkpoint_budget_pct = 0.5;
  auto checkpointed = RunScenario(ckpt_opts, wl);
  std::remove(ckpt_path.c_str());
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "checkpointed: %s\n",
                 checkpointed.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "checkpointed", *checkpointed);

  tuner::TuningOptions fault_opts;
  fault_opts.num_threads = 1;
  fault_opts.fault_spec = "seed=42,transient=0.02,latency_ms=0.05";
  auto faulty = RunScenario(fault_opts, wl);
  if (!faulty.ok()) {
    std::fprintf(stderr, "faulty: %s\n", faulty.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "faulty", *faulty);

  // Sharded costing: the whatif_calls counters must equal the serial
  // scenario's exactly (the router only moves calls; dedup prices each
  // logical call once), so this scenario gates topology-invariance in CI.
  tuner::TuningOptions sharded_opts;
  sharded_opts.num_threads = 4;
  sharded_opts.shards = 4;
  auto sharded = RunScenario(sharded_opts, wl);
  if (!sharded.ok()) {
    std::fprintf(stderr, "sharded: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "sharded", *sharded);

  // Same fleet with shard 2 fault-killed at its 40th call: failover must
  // keep the call count identical; the extra wall-clock is the failover
  // overhead gauge below.
  tuner::TuningOptions sharded_fault_opts = sharded_opts;
  sharded_fault_opts.shard_fault_spec = "2:down_after=40";
  auto sharded_faulty = RunScenario(sharded_fault_opts, wl);
  if (!sharded_faulty.ok()) {
    std::fprintf(stderr, "sharded_faulty: %s\n",
                 sharded_faulty.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "sharded_faulty", *sharded_faulty);

  // Robustness overheads (ROADMAP: < 1% checkpoint overhead target). The
  // checkpoint number divides the time actually spent inside checkpoint
  // writes by the same run's wall-clock — immune to run-to-run noise; the
  // fault number is a run-vs-run delta and is reported, not gated.
  const double ckpt_pct =
      checkpointed->tuning_time_ms > 0
          ? 100.0 * checkpointed->checkpoint_ms / checkpointed->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.checkpoint_overhead_pct")->Set(ckpt_pct);
  const double fault_pct =
      serial->tuning_time_ms > 0
          ? 100.0 * (faulty->tuning_time_ms - serial->tuning_time_ms) /
                serial->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.fault_overhead_pct")->Set(fault_pct);
  const double shard_failover_pct =
      sharded->tuning_time_ms > 0
          ? 100.0 *
                (sharded_faulty->tuning_time_ms - sharded->tuning_time_ms) /
                sharded->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.shard_failover_overhead_pct")
      ->Set(shard_failover_pct);
  // Counter-derived (wall-clock free): identical on every machine, so CI
  // gates it at a floor even where timings are ignored.
  const double saved_pct =
      underived->whatif_calls > 0
          ? 100.0 *
                (static_cast<double>(underived->whatif_calls) -
                 static_cast<double>(serial->whatif_calls)) /
                static_cast<double>(underived->whatif_calls)
          : 0.0;
  metrics.GetGauge("bench.whatif_calls_saved_pct")->Set(saved_pct);

  std::string doc = ObservabilityJson(metrics, nullptr);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    out << doc;
    std::fprintf(stderr,
                 "serial=%.0fms underived=%.0fms parallel=%.0fms "
                 "checkpointed=%.0fms faulty=%.0fms sharded=%.0fms "
                 "sharded_faulty=%.0fms "
                 "checkpoint_overhead=%.3f%% (%zu writes, %.1fms) "
                 "shard_failover_overhead=%.3f%% (%zu failovers) "
                 "whatif_calls_saved=%.1f%% (%zu -> %zu calls)\n",
                 serial->tuning_time_ms, underived->tuning_time_ms,
                 parallel->tuning_time_ms, checkpointed->tuning_time_ms,
                 faulty->tuning_time_ms, sharded->tuning_time_ms,
                 sharded_faulty->tuning_time_ms, ckpt_pct,
                 checkpointed->checkpoint_writes, checkpointed->checkpoint_ms,
                 shard_failover_pct, sharded_faulty->shard_failovers,
                 saved_pct, underived->whatif_calls, serial->whatif_calls);
  } else {
    std::printf("%s", doc.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dta

int main(int argc, char** argv) { return dta::Run(argc, argv); }
