// bench_pipeline — the CI bench-regression workload.
//
// Runs the TPC-H tuning pipeline under twelve scenarios (serial, underived,
// parallel, checkpointed, faulty, sharded, sharded_faulty, failslow,
// socket, socket_failslow, multitenant, streaming) and emits one
// observability document (dta-observability-v1,
// the same schema dta_cli --metrics-json writes) with, per scenario:
//   counters  bench.<scenario>.whatif_calls   — deterministic call counts
//   gauges    bench.<scenario>.wall_ms        — tuning wall-clock
// plus
//   gauges    bench.checkpoint_overhead_pct   — checkpoint I/O time as a
//             percentage of the checkpointed run's wall-clock (span-based,
//             not run-vs-run, so it is robust to machine noise)
//             bench.fault_overhead_pct        — same for the faulty run's
//             extra wall-clock over the serial run
//             bench.shard_failover_overhead_pct — extra wall-clock of the
//             sharded run with one shard fault-killed mid-run over the
//             healthy sharded run (gated at an absolute ceiling)
//             bench.failslow_isolation_overhead_pct — extra wall-clock of
//             the sharded run with one shard fail-slow (successful but
//             latency-amplified responses) and the slowness detector
//             isolating it, over the healthy sharded run (gated at an
//             absolute ceiling)
//             bench.whatif_calls_saved_pct    — real what-if calls the
//             derived-costing layer avoided, as a percentage of the
//             underived (derivation-off) run's calls; counter-derived and
//             deterministic, gated at a floor. The recommendations of the
//             two runs are required to be byte-identical — a divergence
//             fails the benchmark itself.
//             bench.socket_failslow.pool_utilization /
//             bench.failslow.pool_utilization — achieved work/wall ratio of
//             the costing pool under one latency-amplified shard, over the
//             socket transport (completion queue, no thread ever parks on
//             the slow worker) vs the in-process transport. The socket
//             number is expected to hold at or above the in-process one:
//             that comparison is what justifies the async transport.
//             bench.checkpoint.delta_bytes_per_round — bytes the streaming
//             (continuous tuning service) scenario appends to its delta log
//             in its final, steady-state round: the capture has fully
//             repeated by then, so this round's "new work" is just touched
//             template weights and the round's small bookkeeping — a sharp
//             O(new work) bound. Byte-derived and deterministic, gated at
//             an absolute ceiling even under --ignore-wall-clock; it
//             regresses if a steady-state round ever rewrites O(total
//             state). (bench.streaming.delta_bytes_avg, which early rounds'
//             genuinely-new memo entries dominate, is informational.)
//
// Every scenario's recommendation is also required to be byte-identical to
// the serial run's (failslow included — the detector is routing-only — and
// each multitenant tenant's).
//
// tools/bench_compare.py diffs this document against bench/baseline.json:
// locally (ctest) with --ignore-wall-clock so only the deterministic call
// counts gate; in CI's bench-regression job with wall-clock enforced at 10%.
//
// Usage: bench_pipeline [output.json]   (default stdout)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/trace.h"
#include "dta/rpc/worker.h"
#include "dta/stream/continuous.h"
#include "dta/tenant_driver.h"
#include "dta/tuning_session.h"
#include "dta/xml_schema.h"
#include "server/server.h"
#include "workload/workload.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

constexpr double kScaleFactor = 0.25;
constexpr size_t kQueries = 22;
constexpr uint64_t kSeed = 42;

// One pipeline run on a fresh, statistics-warm server (the warm-up tune
// creates the statistics so the timed run measures the costing-dominated
// pipeline, exactly like the TunePipeline micro-benchmark).
Result<tuner::TuningResult> RunScenario(const tuner::TuningOptions& opts,
                                        const workload::Workload& wl) {
  auto server = std::make_unique<server::Server>(
      "prod", optimizer::HardwareParams());
  DTA_RETURN_IF_ERROR(workloads::AttachTpch(server.get(), kScaleFactor,
                                            /*with_data=*/false, 7));
  DTA_RETURN_IF_ERROR(
      server->ImplementConfiguration(workloads::TpchRawConfiguration()));
  {
    tuner::TuningSession warmup(server.get(), tuner::TuningOptions{});
    auto w = warmup.Tune(wl);
    if (!w.ok()) return w.status();
  }
  tuner::TuningSession session(server.get(), opts);
  return session.Tune(wl);
}

// Builds one statistics-warm TPC-H server (same recipe as RunScenario).
Result<std::unique_ptr<server::Server>> MakeWarmServer(
    const std::string& name, const workload::Workload& wl) {
  auto server =
      std::make_unique<server::Server>(name, optimizer::HardwareParams());
  DTA_RETURN_IF_ERROR(workloads::AttachTpch(server.get(), kScaleFactor,
                                            /*with_data=*/false, 7));
  DTA_RETURN_IF_ERROR(
      server->ImplementConfiguration(workloads::TpchRawConfiguration()));
  tuner::TuningSession warmup(server.get(), tuner::TuningOptions{});
  auto w = warmup.Tune(wl);
  if (!w.ok()) return w.status();
  return server;
}

// Socket-transport scenario: the same TPC-H pipeline with every what-if
// call crossing a Unix socket to an in-process CostWorker fleet serving
// clones of the warm server (clones carry the warm statistics, so the
// timed run measures the costing wire, not statistics builds). When
// `victim_fault` is non-empty, worker 2 prices through a FaultInjector
// parsed from it — the fail-slow wire scenario.
Result<tuner::TuningResult> RunSocketScenario(
    int shards, int threads, const std::string& victim_fault,
    const workload::Workload& wl) {
  auto prod = MakeWarmServer("prod", wl);
  if (!prod.ok()) return prod.status();
  // Workers shut down (joining their serve threads) before the clone
  // servers they price on are destroyed.
  std::vector<std::unique_ptr<server::Server>> clones;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::vector<std::unique_ptr<rpc::CostWorker>> workers;
  std::vector<std::string> endpoints;
  static int socket_serial = 0;
  for (int i = 0; i < shards; ++i) {
    auto clone = (*prod)->Clone("worker" + std::to_string(i));
    if (!clone.ok()) return clone.status();
    if (i == 2 && !victim_fault.empty()) {
      auto spec = FaultSpec::Parse(victim_fault);
      if (!spec.ok()) return spec.status();
      injectors.push_back(std::make_unique<FaultInjector>(*spec));
      (*clone)->set_fault_injector(injectors.back().get());
    }
    rpc::CostWorkerOptions wopts;
    wopts.threads = 2;
    workers.push_back(
        std::make_unique<rpc::CostWorker>(clone->get(), wopts));
    clones.push_back(std::move(clone).value());
    endpoints.push_back(StrFormat("/tmp/dta_bench_%d_%d.sock",
                                  static_cast<int>(::getpid()),
                                  socket_serial++));
    DTA_RETURN_IF_ERROR(workers.back()->Listen(endpoints.back()));
  }
  tuner::TuningOptions opts;
  opts.num_threads = threads;
  opts.shards = shards;
  opts.transport = tuner::TuningOptions::Transport::kSocket;
  opts.socket_endpoints = endpoints;
  tuner::TuningSession session(prod->get(), opts);
  auto r = session.Tune(wl);
  for (const std::string& path : endpoints) std::remove(path.c_str());
  return r;
}

// N tenants, each tuning its own warm server under `opts`, sharing what-if
// capacity through the driver's admission control. Returns the outcomes;
// `wall_ms` gets the whole fleet's wall-clock.
Result<std::vector<tuner::TenantOutcome>> RunMultiTenant(
    const tuner::TuningOptions& opts, const workload::Workload& wl, int n,
    double* wall_ms) {
  std::vector<std::unique_ptr<server::Server>> servers;
  std::vector<server::Server*> server_ptrs;
  std::vector<tuner::TenantSpec> specs;
  for (int i = 0; i < n; ++i) {
    auto server = MakeWarmServer("prod-t" + std::to_string(i), wl);
    if (!server.ok()) return server.status();
    server_ptrs.push_back(server->get());
    servers.push_back(std::move(server).value());
    tuner::TenantSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.workload = &wl;
    spec.options = opts;
    spec.weight = 1;
    specs.push_back(std::move(spec));
  }
  tuner::TenantDriver driver(tuner::TenantDriverOptions{});
  const double t0 = MonotonicClock::Instance()->NowMs();
  auto outcomes = driver.Run(specs, server_ptrs);
  *wall_ms = MonotonicClock::Instance()->NowMs() - t0;
  return outcomes;
}

void Record(MetricsRegistry* metrics, const std::string& scenario,
            const tuner::TuningResult& r) {
  metrics->GetCounter("bench." + scenario + ".whatif_calls")
      ->Increment(r.whatif_calls);
  metrics->GetGauge("bench." + scenario + ".wall_ms")->Set(r.tuning_time_ms);
}

int Run(int argc, char** argv) {
  workload::Workload wl = workloads::TpchQueriesPrefix(kQueries, kSeed);
  MetricsRegistry metrics;

  tuner::TuningOptions serial_opts;
  serial_opts.num_threads = 1;
  auto serial = RunScenario(serial_opts, wl);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial: %s\n", serial.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "serial", *serial);

  // Derivation switched off: every cache miss makes a real what-if call.
  // The delta against the (derived) serial run is the calls-saved gauge,
  // and the two recommendations must match byte-for-byte.
  tuner::TuningOptions underived_opts;
  underived_opts.num_threads = 1;
  underived_opts.derived_costing = false;
  auto underived = RunScenario(underived_opts, wl);
  if (!underived.ok()) {
    std::fprintf(stderr, "underived: %s\n",
                 underived.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "underived", *underived);
  const std::string serial_rec =
      tuner::ConfigurationToXml(serial->recommendation)->ToString();
  const std::string underived_rec =
      tuner::ConfigurationToXml(underived->recommendation)->ToString();
  if (serial_rec != underived_rec) {
    std::fprintf(stderr,
                 "derived costing changed the recommendation:\n"
                 "--- derived ---\n%s\n--- underived ---\n%s\n",
                 serial_rec.c_str(), underived_rec.c_str());
    return 1;
  }

  tuner::TuningOptions parallel_opts;
  parallel_opts.num_threads = 4;
  auto parallel = RunScenario(parallel_opts, wl);
  if (!parallel.ok()) {
    std::fprintf(stderr, "parallel: %s\n",
                 parallel.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "parallel", *parallel);

  const std::string ckpt_path = "bench_pipeline_ckpt.tmp";
  tuner::TuningOptions ckpt_opts;
  ckpt_opts.num_threads = 1;
  ckpt_opts.checkpoint_path = ckpt_path;
  // The production checkpoint configuration: round snapshots amortized to
  // 0.5% of wall-clock so the total — including the constant per-session
  // phase-boundary snapshots, which this short run cannot amortize the way
  // an hours-long tuning would — stays under the 1% ROADMAP target.
  ckpt_opts.checkpoint_budget_pct = 0.5;
  auto checkpointed = RunScenario(ckpt_opts, wl);
  std::remove(ckpt_path.c_str());
  if (!checkpointed.ok()) {
    std::fprintf(stderr, "checkpointed: %s\n",
                 checkpointed.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "checkpointed", *checkpointed);

  tuner::TuningOptions fault_opts;
  fault_opts.num_threads = 1;
  fault_opts.fault_spec = "seed=42,transient=0.02,latency_ms=0.05";
  auto faulty = RunScenario(fault_opts, wl);
  if (!faulty.ok()) {
    std::fprintf(stderr, "faulty: %s\n", faulty.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "faulty", *faulty);

  // Sharded costing: the whatif_calls counters must equal the serial
  // scenario's exactly (the router only moves calls; dedup prices each
  // logical call once), so this scenario gates topology-invariance in CI.
  tuner::TuningOptions sharded_opts;
  sharded_opts.num_threads = 4;
  sharded_opts.shards = 4;
  auto sharded = RunScenario(sharded_opts, wl);
  if (!sharded.ok()) {
    std::fprintf(stderr, "sharded: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "sharded", *sharded);

  // Same fleet with shard 2 fault-killed at its 40th call: failover must
  // keep the call count identical; the extra wall-clock is the failover
  // overhead gauge below.
  tuner::TuningOptions sharded_fault_opts = sharded_opts;
  sharded_fault_opts.shard_fault_spec = "2:down_after=40";
  auto sharded_faulty = RunScenario(sharded_fault_opts, wl);
  if (!sharded_faulty.ok()) {
    std::fprintf(stderr, "sharded_faulty: %s\n",
                 sharded_faulty.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "sharded_faulty", *sharded_faulty);

  // Same fleet with shard 2 fail-slow: it answers every call successfully
  // but ~200x late from its 5th call on. The latency-based detector
  // (slow_threshold=4) demotes it to probe-only routing; the extra
  // wall-clock over the healthy sharded run is the isolation-overhead gauge
  // gated in CI. Fail-slow is routing-only, so the recommendation must stay
  // byte-identical to the serial run's.
  tuner::TuningOptions failslow_opts = sharded_opts;
  failslow_opts.shard_fault_spec = "2:latency_ms=0.05,slow_after=5,slow_factor=200";
  failslow_opts.shard_slow_threshold = 4;
  auto failslow = RunScenario(failslow_opts, wl);
  if (!failslow.ok()) {
    std::fprintf(stderr, "failslow: %s\n",
                 failslow.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "failslow", *failslow);
  const std::string failslow_rec =
      tuner::ConfigurationToXml(failslow->recommendation)->ToString();
  if (failslow_rec != serial_rec) {
    std::fprintf(stderr,
                 "fail-slow isolation changed the recommendation:\n"
                 "--- serial ---\n%s\n--- failslow ---\n%s\n",
                 serial_rec.c_str(), failslow_rec.c_str());
    return 1;
  }

  // Socket transport, same fleet shape as `sharded`: every pricing crosses
  // a Unix socket to a CostWorker. The call counter must equal the serial
  // scenario's (the transport only moves bytes) and the recommendation must
  // stay byte-identical — this scenario gates transport-invariance in CI.
  auto socket = RunSocketScenario(4, 4, "", wl);
  if (!socket.ok()) {
    std::fprintf(stderr, "socket: %s\n", socket.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "socket", *socket);
  const std::string socket_rec =
      tuner::ConfigurationToXml(socket->recommendation)->ToString();
  if (socket_rec != serial_rec) {
    std::fprintf(stderr,
                 "socket transport changed the recommendation:\n"
                 "--- serial ---\n%s\n--- socket ---\n%s\n",
                 serial_rec.c_str(), socket_rec.c_str());
    return 1;
  }

  // Socket transport with worker 2 fail-slow (the same latency spec the
  // in-process failslow scenario injects, applied on the worker side). The
  // completion queue keeps pool threads submitting instead of parking on
  // the slow worker, so the pool's work/wall utilization should hold at or
  // above the in-process fail-slow run's — that comparison is exported as
  // the pool_utilization gauges below.
  auto socket_failslow = RunSocketScenario(
      4, 4, "latency_ms=0.05,slow_after=5,slow_factor=200", wl);
  if (!socket_failslow.ok()) {
    std::fprintf(stderr, "socket_failslow: %s\n",
                 socket_failslow.status().ToString().c_str());
    return 1;
  }
  Record(&metrics, "socket_failslow", *socket_failslow);
  const std::string socket_failslow_rec =
      tuner::ConfigurationToXml(socket_failslow->recommendation)->ToString();
  if (socket_failslow_rec != serial_rec) {
    std::fprintf(stderr,
                 "socket fail-slow chaos changed the recommendation:\n"
                 "--- serial ---\n%s\n--- socket_failslow ---\n%s\n",
                 serial_rec.c_str(), socket_failslow_rec.c_str());
    return 1;
  }
  metrics.GetGauge("bench.socket_failslow.pool_utilization")
      ->Set(socket_failslow->ParallelSpeedup());
  metrics.GetGauge("bench.failslow.pool_utilization")
      ->Set(failslow->ParallelSpeedup());

  // Three tenants tuning concurrently under shared admission control; every
  // tenant's recommendation must match the serial single-tenant run's.
  tuner::TuningOptions tenant_opts;
  tenant_opts.num_threads = 2;
  double multitenant_wall_ms = 0;
  auto tenants = RunMultiTenant(tenant_opts, wl, 3, &multitenant_wall_ms);
  if (!tenants.ok()) {
    std::fprintf(stderr, "multitenant: %s\n",
                 tenants.status().ToString().c_str());
    return 1;
  }
  size_t tenant_calls = 0;
  for (const tuner::TenantOutcome& o : *tenants) {
    if (!o.status.ok()) {
      std::fprintf(stderr, "multitenant tenant %s: %s\n", o.name.c_str(),
                   o.status.ToString().c_str());
      return 1;
    }
    tenant_calls += o.result.whatif_calls;
    const std::string rec =
        tuner::ConfigurationToXml(o.result.recommendation)->ToString();
    if (rec != serial_rec) {
      std::fprintf(stderr,
                   "multi-tenancy changed tenant %s's recommendation:\n"
                   "--- serial ---\n%s\n--- tenant ---\n%s\n",
                   o.name.c_str(), serial_rec.c_str(), rec.c_str());
      return 1;
    }
  }
  metrics.GetCounter("bench.multitenant.whatif_calls")
      ->Increment(tenant_calls);
  metrics.GetGauge("bench.multitenant.wall_ms")->Set(multitenant_wall_ms);

  // Continuous tuning service over the same 22 statements as a capture:
  // four full passes, re-tuned every 22 events — four rounds on a warm
  // server with a delta-log checkpoint. Early rounds price genuinely new
  // work (each pass shifts the weight vector, and one weight threshold
  // crossing creates a statistic, rebuilding the memo); by the final round
  // the service has converged — zero what-if calls, zero dirty memo
  // entries — so its appended segment carries only the touched template
  // weights and round bookkeeping. That final segment's bytes are the
  // delta-bytes gauge gated (at an absolute ceiling, even under
  // --ignore-wall-clock) by bench_compare. The accumulated whatif.calls
  // across all rounds is the scenario's deterministic counter: it
  // regresses if the cross-round memo stops carrying costs forward.
  auto stream_server = MakeWarmServer("prod-stream", wl);
  if (!stream_server.ok()) {
    std::fprintf(stderr, "streaming: %s\n",
                 stream_server.status().ToString().c_str());
    return 1;
  }
  std::string capture;
  for (int pass = 0; pass < 4; ++pass) {
    for (const workload::WorkloadStatement& ws : wl.statements()) {
      std::string line = ws.text;
      for (char& c : line) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      capture += line;
      capture += '\n';
    }
  }
  const std::string stream_ckpt = "bench_pipeline_stream_ckpt.tmp";
  std::remove(stream_ckpt.c_str());
  MetricsRegistry stream_metrics;
  tuner::stream::ContinuousTuner::Config stream_config;
  stream_config.server = stream_server->get();
  stream_config.options.num_threads = 4;
  stream_config.retune_interval_events = 22;
  stream_config.checkpoint_path = stream_ckpt;
  stream_config.metrics = &stream_metrics;
  tuner::stream::ContinuousTuner streaming(std::move(stream_config));
  const double stream_t0 = MonotonicClock::Instance()->NowMs();
  Status stream_status = streaming.Init();
  if (stream_status.ok()) stream_status = streaming.Feed(capture);
  if (stream_status.ok()) stream_status = streaming.Finish();
  const double streaming_wall_ms =
      MonotonicClock::Instance()->NowMs() - stream_t0;
  std::remove(stream_ckpt.c_str());
  if (!stream_status.ok()) {
    std::fprintf(stderr, "streaming: %s\n",
                 stream_status.ToString().c_str());
    return 1;
  }
  if (streaming.rounds() != 4) {
    std::fprintf(stderr, "streaming: expected 4 rounds, got %llu\n",
                 static_cast<unsigned long long>(streaming.rounds()));
    return 1;
  }
  metrics.GetCounter("bench.streaming.whatif_calls")
      ->Increment(stream_metrics.GetCounter("whatif.calls")->value());
  metrics.GetCounter("bench.streaming.rounds")
      ->Increment(streaming.rounds());
  metrics.GetGauge("bench.streaming.wall_ms")->Set(streaming_wall_ms);
  // Round 1 writes the base snapshot; each later round appends one delta
  // segment. The gated gauge is the final (steady-state) round's appended
  // bytes — by then the capture has fully repeated, so the segment must be
  // small; early rounds legitimately append their genuinely-new memo
  // entries, so their average is exported as information only.
  double delta_bytes_avg = 0;
  double delta_bytes_steady = 0;
  if (!streaming.delta_bytes_history().empty()) {
    double total = 0;
    for (size_t bytes : streaming.delta_bytes_history()) {
      total += static_cast<double>(bytes);
    }
    delta_bytes_avg =
        total / static_cast<double>(streaming.delta_bytes_history().size());
    delta_bytes_steady =
        static_cast<double>(streaming.delta_bytes_history().back());
  }
  metrics.GetGauge("bench.checkpoint.delta_bytes_per_round")
      ->Set(delta_bytes_steady);
  metrics.GetGauge("bench.streaming.delta_bytes_avg")->Set(delta_bytes_avg);

  // Robustness overheads (ROADMAP: < 1% checkpoint overhead target). The
  // checkpoint number divides the time actually spent inside checkpoint
  // writes by the same run's wall-clock — immune to run-to-run noise; the
  // fault number is a run-vs-run delta and is reported, not gated.
  const double ckpt_pct =
      checkpointed->tuning_time_ms > 0
          ? 100.0 * checkpointed->checkpoint_ms / checkpointed->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.checkpoint_overhead_pct")->Set(ckpt_pct);
  const double fault_pct =
      serial->tuning_time_ms > 0
          ? 100.0 * (faulty->tuning_time_ms - serial->tuning_time_ms) /
                serial->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.fault_overhead_pct")->Set(fault_pct);
  const double shard_failover_pct =
      sharded->tuning_time_ms > 0
          ? 100.0 *
                (sharded_faulty->tuning_time_ms - sharded->tuning_time_ms) /
                sharded->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.shard_failover_overhead_pct")
      ->Set(shard_failover_pct);
  // Fail-slow isolation overhead: what a fleet pays to keep working while
  // one shard answers 200x late. Without the detector this run would be
  // latency-bound on the sick shard; with it, the cost is a handful of
  // pre-demotion calls plus periodic probes.
  const double failslow_pct =
      sharded->tuning_time_ms > 0
          ? 100.0 *
                (failslow->tuning_time_ms - sharded->tuning_time_ms) /
                sharded->tuning_time_ms
          : 0.0;
  metrics.GetGauge("bench.failslow_isolation_overhead_pct")
      ->Set(failslow_pct);
  // Counter-derived (wall-clock free): identical on every machine, so CI
  // gates it at a floor even where timings are ignored.
  const double saved_pct =
      underived->whatif_calls > 0
          ? 100.0 *
                (static_cast<double>(underived->whatif_calls) -
                 static_cast<double>(serial->whatif_calls)) /
                static_cast<double>(underived->whatif_calls)
          : 0.0;
  metrics.GetGauge("bench.whatif_calls_saved_pct")->Set(saved_pct);

  std::string doc = ObservabilityJson(metrics, nullptr);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    out << doc;
    std::fprintf(stderr,
                 "serial=%.0fms underived=%.0fms parallel=%.0fms "
                 "checkpointed=%.0fms faulty=%.0fms sharded=%.0fms "
                 "sharded_faulty=%.0fms failslow=%.0fms socket=%.0fms "
                 "socket_failslow=%.0fms multitenant=%.0fms "
                 "streaming=%.0fms (%llu rounds, steady-state segment "
                 "%.0f bytes, avg %.0f) "
                 "checkpoint_overhead=%.3f%% (%zu writes, %.1fms) "
                 "shard_failover_overhead=%.3f%% (%zu failovers) "
                 "failslow_isolation_overhead=%.3f%% (%zu slow demotions) "
                 "whatif_calls_saved=%.1f%% (%zu -> %zu calls) "
                 "pool_utilization: socket_failslow=%.2f failslow=%.2f\n",
                 serial->tuning_time_ms, underived->tuning_time_ms,
                 parallel->tuning_time_ms, checkpointed->tuning_time_ms,
                 faulty->tuning_time_ms, sharded->tuning_time_ms,
                 sharded_faulty->tuning_time_ms, failslow->tuning_time_ms,
                 socket->tuning_time_ms, socket_failslow->tuning_time_ms,
                 multitenant_wall_ms, streaming_wall_ms,
                 static_cast<unsigned long long>(streaming.rounds()),
                 delta_bytes_steady, delta_bytes_avg, ckpt_pct,
                 checkpointed->checkpoint_writes, checkpointed->checkpoint_ms,
                 shard_failover_pct, sharded_faulty->shard_failovers,
                 failslow_pct, failslow->shard_slow_demotions,
                 saved_pct, underived->whatif_calls, serial->whatif_calls,
                 socket_failslow->ParallelSpeedup(),
                 failslow->ParallelSpeedup());
  } else {
    std::printf("%s", doc.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dta

int main(int argc, char** argv) { return dta::Run(argc, argv); }
