// Reproduces Figures 4 and 5 of the paper (§7.6): end-to-end comparison of
// DTA against the SQL Server 2000 Index Tuning Wizard (reimplemented per
// its published algorithms — see dta/itw_baseline.h) on TPCH22, PSOFT and
// SYNT1. For fairness, both tools tune indexes + materialized views only.
//
// Paper shape: comparable quality (DTA slightly better everywhere), with
// DTA significantly faster on the large templatized workloads.

#include "bench_util.h"
#include "common/strings.h"
#include "dta/itw_baseline.h"
#include "dta/tuning_session.h"
#include "workloads/psoft.h"
#include "workloads/synt1.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

template <typename MakeServer, typename MakeWorkload>
void RunCase(const char* name, MakeServer make_server,
             MakeWorkload make_workload, bench::TablePrinter* quality,
             bench::TablePrinter* runtime) {
  double dta_quality = 0, itw_quality = 0, dta_ms = 0, itw_ms = 0;
  {
    auto server = make_server();
    workload::Workload w = make_workload();
    tuner::TuningOptions opts = tuner::TuningOptions::IndexesAndViews();
    tuner::TuningSession session(server.get(), opts);
    auto r = session.Tune(w);
    if (r.ok()) {
      // Judge the recommendation against the full workload (DTA tunes a
      // compressed one internally).
      auto eval = session.EvaluateConfiguration(w, r->recommendation);
      dta_quality = eval.ok() ? eval->ChangePercent()
                              : r->ImprovementPercent();
      dta_ms = r->tuning_time_ms;
    } else {
      std::fprintf(stderr, "DTA %s: %s\n", name,
                   r.status().ToString().c_str());
    }
  }
  {
    auto server = make_server();
    workload::Workload w = make_workload();
    auto r = tuner::TuneWithItw(server.get(), w);
    if (r.ok()) {
      tuner::TuningSession session(server.get(), tuner::ItwOptions());
      auto eval = session.EvaluateConfiguration(w, r->recommendation);
      itw_quality = eval.ok() ? eval->ChangePercent()
                              : r->ImprovementPercent();
      itw_ms = r->tuning_time_ms;
    } else {
      std::fprintf(stderr, "ITW %s: %s\n", name,
                   r.status().ToString().c_str());
    }
  }
  quality->AddRow({name, StrFormat("%.0f%%", dta_quality),
                   StrFormat("%.0f%%", itw_quality)});
  runtime->AddRow({name, StrFormat("%.2f", dta_ms / 1000.0),
                   StrFormat("%.2f", itw_ms / 1000.0),
                   itw_ms > 0 ? StrFormat("%.0f%%", 100.0 * dta_ms / itw_ms)
                              : "-"});
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  const bool full = bench::FullScale();

  bench::Banner("Figures 4 & 5: DTA vs SQL2K Index Tuning Wizard");
  bench::TablePrinter quality({"Workload", "DTA quality", "ITW quality"});
  bench::TablePrinter runtime(
      {"Workload", "DTA time (s)", "ITW time (s)", "DTA/ITW"});

  RunCase(
      "TPCH22",
      [] {
        auto s = std::make_unique<server::Server>(
            "prod", optimizer::HardwareParams());
        Status st = workloads::AttachTpch(s.get(), 1.0, false, 7);
        if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return s;
      },
      [] { return workloads::TpchQueries(7); }, &quality, &runtime);

  RunCase(
      "PSOFT",
      [] {
        auto s = std::make_unique<server::Server>(
            "prod", optimizer::HardwareParams());
        Status st = workloads::AttachPsoft(s.get(), 3);
        if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return s;
      },
      [full] { return workloads::PsoftWorkload(full ? 6000 : 1500, 3); },
      &quality, &runtime);

  RunCase(
      "SYNT1",
      [] {
        auto s = std::make_unique<server::Server>(
            "prod", optimizer::HardwareParams());
        Status st = workloads::AttachSynt1(s.get(), 1000000, 5);
        if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return s;
      },
      [full] { return workloads::Synt1Workload(full ? 8000 : 2000, 100, 5); },
      &quality, &runtime);

  std::printf("Figure 4: quality of recommendation (expected improvement)\n");
  quality.Print();
  std::printf(
      "\nFigure 5: running time (DTA as %% of ITW; lower is better for "
      "DTA)\n");
  runtime.Print();
  std::printf(
      "\nPaper shape: comparable quality (DTA slightly better); DTA "
      "significantly faster on the large workloads (PSOFT, SYNT1) thanks "
      "to compression, column-group restriction and reduced statistics.\n");
  return 0;
}
