// Design ablation (paper §4): the cost of requiring aligned partitioning,
// and lazy vs eager introduction of aligned candidate variants during
// enumeration.
//
// Paper claim: alignment constrains the search space (quality can drop
// slightly vs unconstrained), and lazy introduction of aligned variants
// keeps enumeration scalable where eager expansion blows up the candidate
// set.

#include "bench_util.h"
#include "common/strings.h"
#include "dta/tuning_session.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

std::unique_ptr<server::Server> MakeServer() {
  auto s = std::make_unique<server::Server>("prod",
                                            optimizer::HardwareParams());
  Status st = workloads::AttachTpch(s.get(), 1.0, false, 7);
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return s;
}

struct RunResult {
  double quality = 0;
  double time_ms = 0;
  size_t evaluations = 0;
  bool aligned = false;
};

RunResult Run(bool require_alignment, bool lazy) {
  RunResult out;
  auto server = MakeServer();
  workload::Workload w = workloads::TpchQueries(7);
  tuner::TuningOptions opts;
  opts.tune_materialized_views = false;  // isolate index/partition interplay
  opts.require_alignment = require_alignment;
  opts.lazy_alignment = lazy;
  tuner::TuningSession session(server.get(), opts);
  auto r = session.Tune(w);
  if (!r.ok()) {
    std::fprintf(stderr, "tune: %s\n", r.status().ToString().c_str());
    return out;
  }
  out.quality = r->ImprovementPercent();
  out.time_ms = r->tuning_time_ms;
  out.evaluations = r->enumeration_evaluations;
  out.aligned = r->recommendation.IsFullyAligned();
  return out;
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  bench::Banner("Ablation: alignment constraint and lazy vs eager variants");

  bench::TablePrinter t({"Mode", "Quality", "Enum evaluations",
                         "Tuning time (s)", "Aligned"});
  RunResult unconstrained = Run(false, true);
  RunResult lazy = Run(true, true);
  RunResult eager = Run(true, false);
  t.AddRow({"unconstrained", StrFormat("%.1f%%", unconstrained.quality),
            StrFormat("%zu", unconstrained.evaluations),
            StrFormat("%.2f", unconstrained.time_ms / 1000.0),
            unconstrained.aligned ? "yes" : "no"});
  t.AddRow({"aligned (lazy)", StrFormat("%.1f%%", lazy.quality),
            StrFormat("%zu", lazy.evaluations),
            StrFormat("%.2f", lazy.time_ms / 1000.0),
            lazy.aligned ? "yes" : "no"});
  t.AddRow({"aligned (eager)", StrFormat("%.1f%%", eager.quality),
            StrFormat("%zu", eager.evaluations),
            StrFormat("%.2f", eager.time_ms / 1000.0),
            eager.aligned ? "yes" : "no"});
  t.Print();
  std::printf(
      "\nExpected shape: aligned recommendations are aligned; lazy and "
      "eager reach comparable quality but eager pays for a larger "
      "candidate pool (more enumeration evaluations); the alignment "
      "constraint restricts the search space, so unconstrained quality is "
      "typically at least as good.\n");
  return 0;
}
