// Reproduces Table 1 (overview of customer databases and workloads) and
// Table 2 (quality of DTA vs. hand-tuned design) of the paper (§7.1).
//
// Methodology, as in the paper: for each customer workload, measure the
// optimizer-estimated workload cost under the raw configuration (C_raw,
// constraint indexes only), under the DBA's hand-tuned design (C_current),
// and under DTA's recommendation (C_DTA, tuned starting from raw). Quality
// of X = (C_raw - C_X) / C_raw.
//
// Expected shape (paper Table 2): DTA comparable to a competent hand-tuned
// design (CUST1), significantly better where the hand tuning is sparse or
// absent (CUST2, CUST4), and correctly recommends nothing for the
// update-heavy CUST3, whose hand-tuned design has *negative* quality.

#include <chrono>

#include "bench_util.h"
#include "common/strings.h"
#include "dta/tuning_session.h"
#include "workloads/customer.h"

namespace dta {
namespace {

using bench::TablePrinter;
using workloads::CustomerProfile;

struct Row {
  CustomerProfile profile;
  double quality_hand = 0;
  double quality_dta = 0;
  size_t events = 0;
  double tuning_minutes = 0;
};

Row RunCustomer(const CustomerProfile& profile, size_t max_events) {
  Row row;
  row.profile = profile;

  server::Server prod("prod", optimizer::HardwareParams::ProductionClass());
  Status s = workloads::AttachCustomer(&prod, profile);
  if (!s.ok()) {
    std::fprintf(stderr, "attach %s: %s\n", profile.name.c_str(),
                 s.ToString().c_str());
    return row;
  }
  workload::Workload w =
      workloads::CustomerWorkload(profile, prod, max_events);
  row.events = w.size();

  tuner::TuningSession session(&prod, tuner::TuningOptions());

  // Hand-tuned quality vs raw.
  catalog::Configuration hand =
      workloads::HandTunedConfiguration(profile, prod);
  auto hand_eval = session.EvaluateConfiguration(w, hand);
  if (hand_eval.ok()) row.quality_hand = hand_eval->ChangePercent();

  // DTA quality vs raw (tuning starts from the raw configuration).
  auto r = session.Tune(w);
  if (r.ok()) {
    row.quality_dta = r->ImprovementPercent();
    row.tuning_minutes = r->tuning_time_ms / 60000.0;
  } else {
    std::fprintf(stderr, "tune %s: %s\n", profile.name.c_str(),
                 r.status().ToString().c_str());
  }
  return row;
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  const bool full = bench::FullScale();

  std::vector<workloads::CustomerProfile> profiles = {
      workloads::Cust1(), workloads::Cust2(), workloads::Cust3(),
      workloads::Cust4()};

  bench::Banner("Table 1: Overview of customer databases and workloads");
  bench::TablePrinter t1(
      {"Database", "#DBs", "#Tables", "Size (GB)", "#Events", "Update %"});
  for (const auto& p : profiles) {
    t1.AddRow({p.name, StrFormat("%d", p.databases),
               StrFormat("%d", p.tables), StrFormat("%.1f", p.total_gb),
               StrFormat("%zu", full ? p.events : p.events / 10),
               StrFormat("%.0f%%", p.update_fraction * 100)});
  }
  t1.Print();

  bench::Banner("Table 2: Quality of DTA vs. hand-tuned design");
  bench::TablePrinter t2({"Workload", "Quality hand-tuned", "Quality DTA",
                          "#events tuned", "Tuning time (min)"});
  for (const auto& p : profiles) {
    size_t events = full ? p.events : p.events / 10;
    auto row = RunCustomer(p, events);
    t2.AddRow({p.name, StrFormat("%.0f%%", row.quality_hand),
               StrFormat("%.0f%%", row.quality_dta),
               StrFormat("%zu", row.events),
               StrFormat("%.2f", row.tuning_minutes)});
  }
  t2.Print();
  std::printf(
      "\nPaper (Table 2): CUST1 82%% vs 87%%, CUST2 6%% vs 41%%, "
      "CUST3 -5%% vs 0%%, CUST4 0%% vs 50%%.\n"
      "Expected shape: DTA >= hand-tuned everywhere; large wins on "
      "CUST2/CUST4; ~0%% recommendation on update-heavy CUST3 whose "
      "hand-tuned design is negative.\n");
  return 0;
}
