// Shared helpers for the paper-reproduction bench binaries: simple table
// printing and environment-based scale knobs.
//
// Every bench accepts the environment variable DTA_BENCH_SCALE:
//   DTA_BENCH_SCALE=full   — paper-scale workloads (slow but faithful)
//   (unset / anything else) — reduced scale with the same shapes

#ifndef DTA_BENCH_BENCH_UTIL_H_
#define DTA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace dta::bench {

inline bool FullScale() {
  const char* v = std::getenv("DTA_BENCH_SCALE");
  return v != nullptr && std::strcmp(v, "full") == 0;
}

// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.resize(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths_[i] = headers_[i].size();
    }
  }

  void AddRow(std::vector<std::string> row) {
    for (size_t i = 0; i < row.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], row[i].size());
    }
    rows_.push_back(std::move(row));
  }

  void Print() const {
    PrintRow(headers_);
    std::string sep;
    for (size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths_[i] + 2, '-');
      if (i + 1 < headers_.size()) sep += "+";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
  }

 private:
  void PrintRow(const std::vector<std::string>& row) const {
    std::string line;
    for (size_t i = 0; i < widths_.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      line += " " + cell + std::string(widths_[i] - cell.size() + 1, ' ');
      if (i + 1 < widths_.size()) line += "|";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

}  // namespace dta::bench

#endif  // DTA_BENCH_BENCH_UTIL_H_
