// Reproduces §7.2 of the paper: tune the 22-query TPC-H benchmark workload
// starting from a raw database (constraint indexes only) with a storage
// bound of 3x the raw data size, implement DTA's recommendation, and
// compare the *expected* (optimizer-estimated) improvement against the
// *actual* improvement in execution time.
//
// Methodology per the paper: warm runs — each query executed 5 times,
// highest and lowest readings discarded, remaining 3 averaged.
//
// Paper numbers (TPC-H 10GB): expected improvement 88%, actual 83%.
// Expected shape here: both large (tens of percent) and close together.

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "common/strings.h"
#include "dta/tuning_session.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

double WarmRunMs(server::Server* server, const sql::SelectStatement& query) {
  std::vector<double> runs;
  for (int i = 0; i < 5; ++i) {
    double ms = 0;
    auto r = server->ExecuteSelect(query, &ms);
    if (!r.ok()) {
      std::fprintf(stderr, "execute: %s\n", r.status().ToString().c_str());
      return 0;
    }
    runs.push_back(ms);
  }
  std::sort(runs.begin(), runs.end());
  // Drop the highest and lowest; average the remaining three.
  return (runs[1] + runs[2] + runs[3]) / 3.0;
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  const double sf = bench::FullScale() ? 0.1 : 0.02;

  bench::Banner("Experiment 7.2: TPC-H expected vs actual improvement");
  std::printf("scale factor %.3f (set DTA_BENCH_SCALE=full for 0.1)\n", sf);

  server::Server prod("prod", optimizer::HardwareParams());
  Status s = workloads::AttachTpch(&prod, sf, /*with_data=*/true, 42);
  if (!s.ok()) {
    std::fprintf(stderr, "attach: %s\n", s.ToString().c_str());
    return 1;
  }
  workload::Workload w = workloads::TpchQueries(42);

  // Storage bound: 3x raw data size (paper: "total storage space allotted
  // was three times the raw data size").
  uint64_t raw_bytes = 0;
  for (const auto& [name, db] : prod.catalog().databases()) {
    raw_bytes += db.TotalDataBytes();
  }
  tuner::TuningOptions opts;
  opts.storage_bytes = raw_bytes * 3;

  tuner::TuningSession session(&prod, opts);
  auto tuned = session.Tune(w);
  if (!tuned.ok()) {
    std::fprintf(stderr, "tune: %s\n", tuned.status().ToString().c_str());
    return 1;
  }
  double expected = tuned->ImprovementPercent();
  std::printf(
      "tuning: %zu events, %zu what-if calls, %.1fs, %zu structures "
      "recommended (%.1f MB of %.1f MB allowed)\n",
      tuned->events_tuned, tuned->whatif_calls,
      tuned->tuning_time_ms / 1000.0,
      tuned->recommendation.StructureCount(),
      static_cast<double>(
          tuned->recommendation.EstimateBytes(prod.catalog())) /
          1e6,
      static_cast<double>(*opts.storage_bytes) / 1e6);

  // Actual execution: raw configuration first.
  std::vector<double> raw_ms, rec_ms;
  Status impl = prod.ImplementConfiguration(workloads::TpchRawConfiguration());
  (void)impl;
  double raw_total = 0;
  for (const auto& ws : w.statements()) {
    double ms = WarmRunMs(&prod, ws.stmt.select());
    raw_ms.push_back(ms);
    raw_total += ms;
  }
  // Then the recommendation.
  impl = prod.ImplementConfiguration(tuned->recommendation);
  (void)impl;
  double rec_total = 0;
  for (const auto& ws : w.statements()) {
    double ms = WarmRunMs(&prod, ws.stmt.select());
    rec_ms.push_back(ms);
    rec_total += ms;
  }
  double actual =
      raw_total > 0 ? 100.0 * (raw_total - rec_total) / raw_total : 0;

  bench::TablePrinter t({"Query", "Raw (ms)", "Recommended (ms)", "Speedup"});
  for (size_t i = 0; i < raw_ms.size(); ++i) {
    t.AddRow({StrFormat("Q%zu", i + 1), StrFormat("%.1f", raw_ms[i]),
              StrFormat("%.1f", rec_ms[i]),
              rec_ms[i] > 0 ? StrFormat("%.1fx", raw_ms[i] / rec_ms[i])
                            : "-"});
  }
  t.Print();

  std::printf("\nExpected improvement (optimizer-estimated): %.0f%%\n",
              expected);
  std::printf("Actual improvement (execution time):         %.0f%%\n",
              actual);

  // Paper-scale check: the same tuning on 10GB-class metadata (no data;
  // statistics synthesized from the generator specs).
  {
    server::Server big("prod10g", optimizer::HardwareParams());
    Status s10 = workloads::AttachTpch(&big, 10.0, /*with_data=*/false, 42);
    if (s10.ok()) {
      uint64_t big_raw = 0;
      for (const auto& [name, db] : big.catalog().databases()) {
        big_raw += db.TotalDataBytes();
      }
      tuner::TuningOptions big_opts;
      big_opts.storage_bytes = big_raw * 3;
      tuner::TuningSession big_session(&big, big_opts);
      auto big_result = big_session.Tune(w);
      if (big_result.ok()) {
        std::printf(
            "Expected improvement at 10GB-class scale (metadata-only): "
            "%.0f%%\n",
            big_result->ImprovementPercent());
      }
    }
  }
  std::printf("Paper: expected 88%%, actual 83%% (TPC-H 10GB).\n");
  return 0;
}
