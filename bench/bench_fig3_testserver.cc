// Reproduces Figure 3 of the paper (§7.3): reduction in production-server
// overhead when tuning exploits a test server.
//
// Four tuning tasks over TPC-H 1GB-class metadata:
//   TPCHQ1-I : first query only, indexes only
//   TPCHQ1-A : first query only, indexes + materialized views
//   TPCH22-I : all 22 queries, indexes only
//   TPCH22-A : all 22 queries, indexes + materialized views
//
// Overhead = total simulated duration of statements submitted to the
// production server by DTA (what-if optimizations + statistics creation).
// With a test server, only statistics creation remains on production.
//
// Paper shape: reduction grows with tuning complexity, from ~60%
// (TPCHQ1-I) to ~90% (TPCH22-A).

#include "bench_util.h"
#include "common/strings.h"
#include "dta/tuning_session.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

struct Task {
  const char* name;
  size_t queries;
  bool views;
};

// Returns the production-server overhead of one tuning run.
double RunTuning(const Task& task, bool use_test_server) {
  server::Server prod("prod", optimizer::HardwareParams::ProductionClass());
  Status s = workloads::AttachTpch(&prod, 1.0, /*with_data=*/false, 7);
  if (!s.ok()) {
    std::fprintf(stderr, "attach: %s\n", s.ToString().c_str());
    return 0;
  }
  workload::Workload w = workloads::TpchQueriesPrefix(task.queries, 7);

  tuner::TuningOptions opts;
  opts.tune_materialized_views = task.views;
  opts.tune_partitioning = false;  // the paper's Figure 3 tunes I and I+MV
  tuner::TuningSession session(&prod, opts);

  std::unique_ptr<server::Server> test;
  if (use_test_server) {
    auto t = server::Server::FromMetadataScript(
        prod.ScriptMetadata(), "test",
        optimizer::HardwareParams::TestClass());
    if (!t.ok()) {
      std::fprintf(stderr, "test server: %s\n",
                   t.status().ToString().c_str());
      return 0;
    }
    test = std::move(t).value();
    Status u = session.UseTestServer(test.get());
    if (!u.ok()) {
      std::fprintf(stderr, "%s\n", u.ToString().c_str());
      return 0;
    }
  }

  prod.ResetOverhead();
  auto r = session.Tune(w);
  if (!r.ok()) {
    std::fprintf(stderr, "tune %s: %s\n", task.name,
                 r.status().ToString().c_str());
    return 0;
  }
  return prod.overhead_ms();
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  bench::Banner("Figure 3: Reduction in production-server overhead");

  const Task tasks[] = {
      {"TPCHQ1-I", 1, false},
      {"TPCHQ1-A", 1, true},
      {"TPCH22-I", 22, false},
      {"TPCH22-A", 22, true},
  };

  bench::TablePrinter t({"Workload", "Overhead w/o test (ms)",
                         "Overhead w/ test (ms)", "Reduction"});
  for (const Task& task : tasks) {
    double without = RunTuning(task, /*use_test_server=*/false);
    double with = RunTuning(task, /*use_test_server=*/true);
    double reduction = without > 0 ? 100.0 * (without - with) / without : 0;
    t.AddRow({task.name, StrFormat("%.0f", without),
              StrFormat("%.0f", with), StrFormat("%.0f%%", reduction)});
  }
  t.Print();
  std::printf(
      "\nPaper (Figure 3): ~60%% for TPCHQ1-I rising to ~90%% for "
      "TPCH22-A; the reduction grows with tuning complexity because only "
      "statistics creation remains on the production server.\n");
  return 0;
}
