// Design ablation (paper §3, Example 2): integrated vs staged selection of
// physical design features, plus the effect of the Merging step.
//
// Staged tuning picks partitioning first, then indexes, then materialized
// views, locking in each stage's choices. Because features interact (a
// clustered index and a partitioning can target different columns of the
// same table), staging can lock in inferior designs. Merging matters under
// storage pressure: without it, per-query candidates are over-specialized.

#include "bench_util.h"
#include "common/strings.h"
#include "dta/staged_baseline.h"
#include "dta/tuning_session.h"
#include "workloads/tpch.h"

namespace dta {
namespace {

std::unique_ptr<server::Server> MakeServer() {
  auto s = std::make_unique<server::Server>("prod",
                                            optimizer::HardwareParams());
  Status st = workloads::AttachTpch(s.get(), 1.0, false, 7);
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return s;
}

}  // namespace
}  // namespace dta

int main() {
  using namespace dta;
  bench::Banner("Ablation: integrated vs staged tuning (paper §3)");

  workload::Workload w = workloads::TpchQueries(7);

  // Integrated.
  double integrated_quality = 0, integrated_ms = 0;
  {
    auto server = MakeServer();
    tuner::TuningSession session(server.get(), tuner::TuningOptions());
    auto r = session.Tune(w);
    if (r.ok()) {
      integrated_quality = r->ImprovementPercent();
      integrated_ms = r->tuning_time_ms;
    }
  }
  // Staged.
  double staged_quality = 0, staged_ms = 0;
  {
    auto server = MakeServer();
    auto r = tuner::TuneStaged(server.get(), w);
    if (r.ok()) {
      staged_quality = r->ImprovementPercent();
      staged_ms = r->total_tuning_ms;
    } else {
      std::fprintf(stderr, "staged: %s\n", r.status().ToString().c_str());
    }
  }

  bench::TablePrinter t({"Approach", "Quality", "Tuning time (s)"});
  t.AddRow({"Integrated (DTA)", StrFormat("%.1f%%", integrated_quality),
            StrFormat("%.2f", integrated_ms / 1000.0)});
  t.AddRow({"Staged (part->idx->mv)", StrFormat("%.1f%%", staged_quality),
            StrFormat("%.2f", staged_ms / 1000.0)});
  t.Print();
  std::printf(
      "\nExpected shape: integrated >= staged quality (the staged tool "
      "cannot revisit stage-1 choices).\n");

  bench::Banner("Ablation: merging on/off under a storage bound");
  // A tight storage bound is where merging pays: merged structures serve
  // several queries within the budget.
  uint64_t raw_bytes = 0;
  {
    auto server = MakeServer();
    for (const auto& [name, db] : server->catalog().databases()) {
      raw_bytes += db.TotalDataBytes();
    }
  }
  bench::TablePrinter m({"Merging", "Quality", "Structures"});
  for (bool merging : {true, false}) {
    auto server = MakeServer();
    tuner::TuningOptions opts;
    opts.enable_merging = merging;
    opts.storage_bytes = raw_bytes / 8;  // tight budget
    tuner::TuningSession session(server.get(), opts);
    auto r = session.Tune(w);
    if (!r.ok()) {
      std::fprintf(stderr, "merge=%d: %s\n", merging,
                   r.status().ToString().c_str());
      continue;
    }
    m.AddRow({merging ? "on" : "off",
              StrFormat("%.1f%%", r->ImprovementPercent()),
              StrFormat("%zu", r->recommendation.StructureCount())});
  }
  m.Print();
  std::printf(
      "\nExpected shape: with a tight storage bound, merging achieves "
      "equal or better quality (merged structures serve several queries "
      "within the budget).\n");
  return 0;
}
